"""Unit tests for the delta diff engine (repro.core.delta)."""

import random

import pytest

from repro.core import (
    DeltaError,
    HeadChild,
    NewContent,
    TopElement,
    apply_delta,
    content_tree,
    diff_trees,
)
from repro.html import Comment, Element, Text, parse_document, serialize_node


def tree(markup):
    """A canonical html tree parsed from full-document markup."""
    return parse_document(markup).document_element


def roundtrip(old_markup, new_markup):
    """Diff two documents, apply to a clone of the old, return (ops, result)."""
    old = tree(old_markup)
    new = tree(new_markup)
    ops = diff_trees(old, new)
    target = old.clone(deep=True)
    apply_delta(target, ops)
    assert serialize_node(target) == serialize_node(new)
    return ops


class TestDiffApply:
    def test_identical_trees_produce_no_ops(self):
        markup = "<html><head><title>T</title></head><body><p>hi</p></body></html>"
        assert roundtrip(markup, markup) == []

    def test_single_text_edit_is_one_text_op(self):
        ops = roundtrip(
            "<html><head></head><body><p>old text</p><p>stays</p></body></html>",
            "<html><head></head><body><p>new text</p><p>stays</p></body></html>",
        )
        assert len(ops) == 1
        assert ops[0]["op"] == "text"
        assert ops[0]["data"] == "new text"

    def test_attribute_change_is_one_attrs_op(self):
        ops = roundtrip(
            '<html><head></head><body><div class="a" id="x">c</div></body></html>',
            '<html><head></head><body><div class="b" id="x">c</div></body></html>',
        )
        assert [op["op"] for op in ops] == ["attrs"]
        assert ["class", "b"] in ops[0]["attrs"]

    def test_append_child_is_one_insert_op(self):
        ops = roundtrip(
            "<html><head></head><body><p>a</p></body></html>",
            "<html><head></head><body><p>a</p><p>b</p></body></html>",
        )
        assert [op["op"] for op in ops] == ["insert"]

    def test_remove_tail_children(self):
        ops = roundtrip(
            "<html><head></head><body><p>a</p><p>b</p><i>c</i></body></html>",
            "<html><head></head><body><p>a</p></body></html>",
        )
        assert all(op["op"] == "remove" for op in ops)

    def test_replace_on_tag_change(self):
        ops = roundtrip(
            "<html><head></head><body><p>a</p></body></html>",
            "<html><head></head><body><div>a</div></body></html>",
        )
        assert [op["op"] for op in ops] == ["replace"]

    def test_nested_edit_uses_deep_path(self):
        ops = roundtrip(
            "<html><head></head><body><div><ul><li>one</li><li>two</li></ul></div></body></html>",
            "<html><head></head><body><div><ul><li>one</li><li>TWO</li></ul></div></body></html>",
        )
        assert len(ops) == 1
        # body -> div -> ul -> li -> text node
        assert ops[0]["path"] == [0, 0, 1, 0]

    def test_head_edits_use_head_section(self):
        ops = roundtrip(
            "<html><head><title>Old</title></head><body></body></html>",
            "<html><head><title>New</title></head><body></body></html>",
        )
        assert all(op["sec"] == "head" for op in ops)

    def test_body_to_frameset_shape_change(self):
        ops = roundtrip(
            "<html><head></head><body><p>plain</p></body></html>",
            "<html><head></head><frameset cols='*,*'><frame src='a'></frameset></html>",
        )
        kinds = {op["op"] for op in ops}
        assert "drop" in kinds and "top" in kinds

    def test_top_attrs_change(self):
        ops = roundtrip(
            "<html><head></head><body><p>x</p></body></html>",
            "<html><head></head><body bgcolor='red'><p>x</p></body></html>",
        )
        assert [op["op"] for op in ops] == ["top"]

    def test_raw_text_script_edit_survives(self):
        roundtrip(
            "<html><head><script>var a = '<p>&amp;';</script></head><body></body></html>",
            "<html><head><script>var a = '<div>&lt;';</script></head><body></body></html>",
        )

    def test_comment_edit(self):
        ops = roundtrip(
            "<html><head></head><body><!--one--><p>x</p></body></html>",
            "<html><head></head><body><!--two--><p>x</p></body></html>",
        )
        assert [op["op"] for op in ops] == ["comment"]


class TestApplyRejects:
    def body_tree(self):
        return tree("<html><head></head><body><p>x</p></body></html>")

    def test_dangling_path(self):
        with pytest.raises(DeltaError):
            apply_delta(self.body_tree(), [{"op": "remove", "sec": "body", "path": [9]}])

    def test_missing_section(self):
        with pytest.raises(DeltaError):
            apply_delta(
                self.body_tree(), [{"op": "text", "sec": "frameset", "path": [0], "data": "x"}]
            )

    def test_unknown_section(self):
        with pytest.raises(DeltaError):
            apply_delta(self.body_tree(), [{"op": "remove", "sec": "nav", "path": [0]}])

    def test_type_confused_text_op(self):
        with pytest.raises(DeltaError):
            apply_delta(
                self.body_tree(), [{"op": "text", "sec": "body", "path": [0], "data": "x"}]
            )

    def test_unknown_op_kind(self):
        with pytest.raises(DeltaError):
            apply_delta(self.body_tree(), [{"op": "teleport", "sec": "body", "path": [0]}])

    def test_malformed_op_record(self):
        with pytest.raises(DeltaError):
            apply_delta(self.body_tree(), [{"op": "insert", "sec": "body"}])
        with pytest.raises(DeltaError):
            apply_delta(self.body_tree(), ["not-a-dict"])
        with pytest.raises(DeltaError):
            apply_delta(self.body_tree(), "not-a-list")

    def test_drop_head_rejected(self):
        with pytest.raises(DeltaError):
            apply_delta(self.body_tree(), [{"op": "drop", "sec": "head"}])

    def test_partial_failure_raises_midway(self):
        target = self.body_tree()
        ops = [
            {"op": "text", "sec": "body", "path": [0, 0], "data": "applied"},
            {"op": "remove", "sec": "body", "path": [7]},
        ]
        with pytest.raises(DeltaError):
            apply_delta(target, ops)
        # The first op landed; callers are expected to resync.
        assert "applied" in serialize_node(target)


class TestContentTree:
    def test_content_tree_mirrors_full_update(self):
        content = NewContent(
            1,
            [HeadChild("title", [], "T"), HeadChild("style", [("media", "all")], "p{}")],
            [TopElement("body", [("class", "c")], "<p>hello <b>bold</b></p>")],
        )
        html = content_tree(content)
        head = html.children[0]
        assert head.tag == "head"
        assert [c.tag for c in head.children] == ["title", "style"]
        body = html.children[1]
        assert body.get_attribute("class") == "c"
        assert serialize_node(body) == '<body class="c"><p>hello <b>bold</b></p></body>'


def random_document(rng):
    document = parse_document("<html><head><title>t</title></head><body></body></html>")
    body = document.body
    for _ in range(rng.randrange(3, 12)):
        _random_insert(rng, body)
    return document


_TAGS = ["div", "p", "span", "ul", "li", "b"]


def _random_insert(rng, parent):
    roll = rng.random()
    if roll < 0.5:
        node = Text("txt-%d" % rng.randrange(1000))
    elif roll < 0.6:
        node = Comment("c-%d" % rng.randrange(1000))
    else:
        node = Element(rng.choice(_TAGS), {"data-n": str(rng.randrange(100))})
        for _ in range(rng.randrange(0, 3)):
            node.append_child(Text("in-%d" % rng.randrange(1000)))
    spots = parent.child_nodes
    reference = spots[rng.randrange(len(spots))] if spots else None
    parent.insert_before(node, reference)


def _random_edit(rng, document):
    """One random mutation: text edit, attr churn, insert, or remove."""
    body = document.body
    nodes = [n for n in body.descendants()]
    roll = rng.random()
    texts = [n for n in nodes if isinstance(n, Text)]
    elements = [n for n in nodes if isinstance(n, Element)]
    if roll < 0.35 and texts:
        rng.choice(texts).data = "edit-%d" % rng.randrange(10000)
    elif roll < 0.55 and elements:
        rng.choice(elements).set_attribute("data-n", str(rng.randrange(10000)))
    elif roll < 0.8:
        parents = [body] + [e for e in elements if e.tag in ("div", "ul", "li")]
        _random_insert(rng, rng.choice(parents))
    elif nodes:
        victim = rng.choice(nodes)
        victim.parent.remove_child(victim)


@pytest.mark.parametrize("seed", range(8))
def test_randomized_edit_sequences_roundtrip(seed):
    """Property-style: across random edit sequences, diff+apply always
    reproduces the new tree byte-for-byte (serialized)."""
    rng = random.Random(seed)
    document = random_document(rng)
    current = document.document_element.clone(deep=True)
    for _ in range(12):
        _random_edit(rng, document)
        new = document.document_element
        ops = diff_trees(current, new)
        apply_delta(current, ops)
        assert serialize_node(current) == serialize_node(new)
