"""Unit tests for the link model, sockets, and NAT."""

import pytest

from repro.net import (
    LAN_PROFILE,
    SERVER_PROFILE,
    WAN_HOME_PROFILE,
    ConnectionRefused,
    Host,
    HostUnreachable,
    NatGateway,
    Network,
    NetworkError,
)
from repro.sim import Simulator, StoreClosed


def make_lan_pair():
    sim = Simulator()
    network = Network(sim)
    a = Host(network, "a", LAN_PROFILE, segment="campus")
    b = Host(network, "b", LAN_PROFILE, segment="campus")
    return sim, network, a, b


def run(sim, generator):
    return sim.run_until_complete(sim.process(generator))


class TestLinkModel:
    def test_serialization_delay_scales_with_size(self):
        sim, network, a, b = make_lan_pair()
        small = network.transfer_delay(a, b, 1000)
        sim2, network2, a2, b2 = make_lan_pair()
        large = network2.transfer_delay(a2, b2, 100000)
        assert large > small

    def test_same_segment_skips_core_latency(self):
        sim = Simulator()
        network = Network(sim)
        a = Host(network, "a", LAN_PROFILE, segment="campus")
        b = Host(network, "b", LAN_PROFILE, segment="campus")
        c = Host(network, "c", SERVER_PROFILE, segment="internet")
        assert network.propagation_latency(a, b) < network.propagation_latency(a, c)

    def test_uplink_queueing_serializes_transfers(self):
        sim = Simulator()
        network = Network(sim)
        a = Host(network, "a", WAN_HOME_PROFILE, segment="home-a")
        b = Host(network, "b", WAN_HOME_PROFILE, segment="home-b")
        first = network.transfer_delay(a, b, 48000)  # ~1 s at 384 Kbps
        second = network.transfer_delay(a, b, 48000)
        assert second > first  # second transfer waits behind the first

    def test_asymmetric_wan_profile(self):
        assert WAN_HOME_PROFILE.up_bps < WAN_HOME_PROFILE.down_bps

    def test_self_transfer_is_free(self):
        sim, network, a, _b = make_lan_pair()
        assert network.transfer_delay(a, a, 10000) == 0.0

    def test_negative_size_rejected(self):
        sim, network, a, b = make_lan_pair()
        with pytest.raises(ValueError):
            network.transfer_delay(a, b, -1)


class TestNetworkRegistry:
    def test_duplicate_host_rejected(self):
        sim = Simulator()
        network = Network(sim)
        Host(network, "dup", LAN_PROFILE)
        with pytest.raises(NetworkError):
            Host(network, "dup", LAN_PROFILE)

    def test_lookup_case_insensitive(self):
        sim = Simulator()
        network = Network(sim)
        host = Host(network, "MyHost", LAN_PROFILE)
        assert network.lookup("myhost") is host
        assert network.lookup("MYHOST") is host


class TestConnect:
    def test_connect_and_exchange(self):
        sim, _network, a, b = make_lan_pair()
        listener = b.listen(3000)
        log = {}

        def server():
            conn = yield listener.accept()
            data = yield conn.recv()
            log["server_got"] = data
            yield conn.send(b"pong")

        def client():
            conn = yield a.connect("b", 3000)
            yield conn.send(b"ping")
            reply = yield conn.recv()
            log["client_got"] = reply

        sim.process(server())
        client_proc = sim.process(client())
        sim.run_until_complete(client_proc)
        assert log == {"server_got": b"ping", "client_got": b"pong"}

    def test_connect_costs_a_round_trip(self):
        sim, network, a, b = make_lan_pair()
        b.listen(3000)

        def client():
            yield a.connect("b", 3000)
            return sim.now

        elapsed = run(sim, client())
        assert elapsed == pytest.approx(2 * network.propagation_latency(a, b))

    def test_connect_unknown_host_fails(self):
        sim, _network, a, _b = make_lan_pair()

        def client():
            try:
                yield a.connect("nowhere", 80)
            except HostUnreachable:
                return "unreachable"

        assert run(sim, client()) == "unreachable"

    def test_connect_closed_port_refused(self):
        sim, _network, a, b = make_lan_pair()

        def client():
            try:
                yield a.connect("b", 9999)
            except ConnectionRefused:
                return "refused"

        assert run(sim, client()) == "refused"

    def test_listener_close_refuses_new_connections(self):
        sim, _network, a, b = make_lan_pair()
        listener = b.listen(3000)
        listener.close()

        def client():
            try:
                yield a.connect("b", 3000)
            except ConnectionRefused:
                return "refused"

        assert run(sim, client()) == "refused"

    def test_port_reuse_after_close(self):
        sim, _network, _a, b = make_lan_pair()
        listener = b.listen(3000)
        listener.close()
        b.listen(3000)  # should not raise

    def test_duplicate_listen_rejected(self):
        sim, _network, _a, b = make_lan_pair()
        b.listen(3000)
        with pytest.raises(NetworkError):
            b.listen(3000)

    def test_bad_port_rejected(self):
        sim, _network, _a, b = make_lan_pair()
        with pytest.raises(NetworkError):
            b.listen(0)


class TestConnectionStream:
    def test_chunks_preserve_order(self):
        sim, _network, a, b = make_lan_pair()
        listener = b.listen(1234)
        received = []

        def server():
            conn = yield listener.accept()
            for _ in range(3):
                chunk = yield conn.recv()
                received.append(chunk)

        def client():
            conn = yield a.connect("b", 1234)
            for chunk in (b"one", b"two", b"three"):
                conn.send(chunk)
            yield sim.timeout(1)

        sim.process(server())
        sim.process(client())
        sim.run()
        assert received == [b"one", b"two", b"three"]

    def test_close_signals_end_of_stream(self):
        sim, _network, a, b = make_lan_pair()
        listener = b.listen(1234)

        def server():
            conn = yield listener.accept()
            chunk = yield conn.recv()
            try:
                yield conn.recv()
            except StoreClosed:
                return chunk

        def client():
            conn = yield a.connect("b", 1234)
            yield conn.send(b"bye")
            conn.close()

        server_proc = sim.process(server())
        sim.process(client())
        assert sim.run_until_complete(server_proc) == b"bye"

    def test_send_after_close_fails(self):
        sim, _network, a, b = make_lan_pair()
        b.listen(1234)

        def client():
            conn = yield a.connect("b", 1234)
            conn.close()
            try:
                yield conn.send(b"x")
            except NetworkError:
                return "failed"

        assert run(sim, client()) == "failed"

    def test_send_requires_bytes(self):
        sim, _network, a, b = make_lan_pair()
        b.listen(1234)

        def client():
            conn = yield a.connect("b", 1234)
            with pytest.raises(TypeError):
                conn.send("not bytes")
            return "done"

        assert run(sim, client()) == "done"

    def test_byte_counters(self):
        sim, _network, a, b = make_lan_pair()
        listener = b.listen(1234)

        def server():
            conn = yield listener.accept()
            yield conn.recv()
            return conn

        def client():
            conn = yield a.connect("b", 1234)
            yield conn.send(b"12345")
            return conn

        server_proc = sim.process(server())
        client_conn = run(sim, client())
        server_conn = sim.run_until_complete(server_proc)
        assert client_conn.bytes_sent == 5
        assert server_conn.bytes_received == 5


class TestNat:
    def build(self):
        sim = Simulator()
        network = Network(sim)
        gateway = NatGateway(network, "gw", WAN_HOME_PROFILE, segment="home")
        inside = Host(network, "inside", LAN_PROFILE, segment="home", public=False)
        outside = Host(network, "outside", WAN_HOME_PROFILE, segment="elsewhere")
        return sim, network, gateway, inside, outside

    def test_private_host_unreachable_from_outside(self):
        sim, _network, _gateway, inside, outside = self.build()
        inside.listen(3000)

        def client():
            try:
                yield outside.connect("inside", 3000)
            except HostUnreachable:
                return "blocked"

        assert run(sim, client()) == "blocked"

    def test_private_host_reachable_within_segment(self):
        sim = Simulator()
        network = Network(sim)
        inside = Host(network, "inside", LAN_PROFILE, segment="home", public=False)
        sibling = Host(network, "sibling", LAN_PROFILE, segment="home")
        inside.listen(3000)

        def client():
            conn = yield sibling.connect("inside", 3000)
            return conn.peer_name

        assert run(sim, client()) == "inside"

    def test_port_forwarding_reaches_inside(self):
        sim, _network, gateway, inside, outside = self.build()
        listener = inside.listen(3000)
        gateway.forward(3000, "inside", 3000)
        accepted = {}

        def server():
            conn = yield listener.accept()
            accepted["peer"] = conn.local.name

        def client():
            conn = yield outside.connect("gw", 3000)
            return conn.peer_name

        sim.process(server())
        peer = run(sim, client())
        assert peer == "inside"
        assert accepted["peer"] == "inside"

    def test_forward_to_unknown_host_rejected(self):
        _sim, _network, gateway, _inside, _outside = self.build()
        with pytest.raises(NetworkError):
            gateway.forward(3000, "ghost", 3000)

    def test_forward_outside_segment_rejected(self):
        _sim, _network, gateway, _inside, outside = self.build()
        with pytest.raises(NetworkError):
            gateway.forward(3000, "outside", 3000)

    def test_remove_forward(self):
        sim, _network, gateway, inside, outside = self.build()
        inside.listen(3000)
        gateway.forward(3000, "inside", 3000)
        gateway.remove_forward(3000)

        def client():
            try:
                yield outside.connect("gw", 3000)
            except ConnectionRefused:
                return "refused"

        assert run(sim, client()) == "refused"
