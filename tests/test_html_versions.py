"""DOM version-stamp invariants (repro.html.dom).

The incremental generation pipeline treats version equality as a sound
"identical subtree" certificate, so the stamps must satisfy:

* every mutation bumps the mutated node's own version and the subtree
  version of the node and every ancestor;
* untouched siblings (and their subtrees) keep their versions;
* no-op writes (same attribute value, same text data) do not bump;
* clones draw fresh stamps (never share the source's);
* equal subtree versions on two snapshots of the same node imply equal
  serialization (the property the diff and the segment cache rely on).
"""

import string

from hypothesis import given, settings, strategies as st

from repro.html import Comment, Document, Element, Text, parse_document, serialize_node


def build_page():
    return parse_document(
        "<html><head><title>T</title></head>"
        "<body><div id='a'><span>one</span></div>"
        "<div id='b'><span>two</span></div></body></html>"
    )


def versions(node):
    return node.own_version, node.subtree_version


def ancestors(node):
    chain = []
    current = node.parent
    while current is not None:
        chain.append(current)
        current = current.parent
    return chain


def assert_dirty_chain(node, before):
    """The node and every ancestor carry new subtree versions."""
    for ancestor in [node] + ancestors(node):
        assert ancestor.subtree_version != before[id(ancestor)][1]


def snapshot_versions(root):
    table = {}

    def walk(node):
        table[id(node)] = versions(node)
        for child in getattr(node, "child_nodes", ()):
            walk(child)

    walk(root)
    return table


def test_set_attribute_bumps_node_and_ancestors():
    document = build_page()
    target = document.get_element_by_id("a")
    sibling = document.get_element_by_id("b")
    before = snapshot_versions(document)
    target.set_attribute("class", "hot")
    assert target.own_version != before[id(target)][0]
    assert_dirty_chain(target, before)
    assert versions(sibling) == before[id(sibling)]


def test_remove_attribute_bumps_only_when_present():
    document = build_page()
    target = document.get_element_by_id("a")
    before = snapshot_versions(document)
    target.remove_attribute("nonexistent")
    assert versions(target) == before[id(target)]
    target.set_attribute("class", "x")
    mid = snapshot_versions(document)
    target.remove_attribute("class")
    assert target.subtree_version != mid[id(target)][1]


def test_noop_attribute_write_does_not_bump():
    document = build_page()
    target = document.get_element_by_id("a")
    target.set_attribute("class", "same")
    before = snapshot_versions(document)
    target.set_attribute("class", "same")
    assert snapshot_versions(document) == before


def test_text_data_bumps_node_and_ancestors():
    document = build_page()
    span = document.get_element_by_id("a").child_nodes[0]
    text = span.child_nodes[0]
    before = snapshot_versions(document)
    text.data = "changed"
    assert text.own_version != before[id(text)][0]
    assert_dirty_chain(text, before)


def test_noop_text_write_does_not_bump():
    document = build_page()
    text = document.get_element_by_id("a").child_nodes[0].child_nodes[0]
    before = snapshot_versions(document)
    text.data = text.data
    assert snapshot_versions(document) == before


def test_append_and_remove_child_bump_parent_chain():
    document = build_page()
    target = document.get_element_by_id("b")
    sibling = document.get_element_by_id("a")
    before = snapshot_versions(document)
    child = Element("em")
    target.append_child(child)
    assert_dirty_chain(target, before)
    assert versions(sibling) == before[id(sibling)]
    mid = snapshot_versions(document)
    target.remove_child(child)
    assert_dirty_chain(target, mid)


def test_comment_data_bumps():
    document = build_page()
    body = document.get_element_by_id("a").parent
    comment = Comment("note")
    body.append_child(comment)
    before = snapshot_versions(document)
    comment.data = "edited"
    assert_dirty_chain(comment, before)


def test_doctype_bumps_document():
    document = build_page()
    before = document.subtree_version
    document.doctype = "DOCTYPE html"
    assert document.subtree_version != before


def test_clone_draws_fresh_stamps():
    document = build_page()
    target = document.get_element_by_id("a")
    clone = target.clone(deep=True)
    seen = set()

    def collect(node):
        seen.add(node.own_version)
        seen.add(node.subtree_version)
        for child in getattr(node, "child_nodes", ()):
            collect(child)

    collect(target)
    originals = set(seen)
    seen.clear()
    collect(clone)
    assert not (seen & originals)


def test_versions_monotone_across_mutations():
    document = build_page()
    target = document.get_element_by_id("a")
    observed = []
    for index in range(5):
        target.set_attribute("n", str(index))
        observed.append(target.subtree_version)
    assert observed == sorted(observed)
    assert len(set(observed)) == len(observed)


# -- property: equal versions => equal serialization -------------------------------

_words = st.text(alphabet=string.ascii_letters + string.digits + " ", min_size=1, max_size=10)


@st.composite
def mutations(draw):
    """(kind, payload) operations applied to the fixture page."""
    kind = draw(st.sampled_from(["attr", "text", "append", "remove", "noop-attr", "noop-text"]))
    return kind, draw(_words), draw(st.integers(min_value=0, max_value=1))


def apply_mutation(document, op):
    kind, word, which = op
    target = document.get_element_by_id("a" if which == 0 else "b")
    span = target.child_nodes[0]
    if kind == "attr":
        target.set_attribute("class", word)
    elif kind == "text":
        span.child_nodes[0].data = word
    elif kind == "append":
        target.append_child(Text(word))
    elif kind == "remove":
        if len(target.child_nodes) > 1:
            target.remove_child(target.child_nodes[-1])
    elif kind == "noop-attr":
        target.set_attribute("class", target.get_attribute("class") or "")
    elif kind == "noop-text":
        span.child_nodes[0].data = span.child_nodes[0].data


@settings(max_examples=60, deadline=None)
@given(st.lists(mutations(), min_size=1, max_size=12))
def test_equal_version_implies_equal_serialization(ops):
    """Across an arbitrary mutation sequence, any node whose subtree
    version is unchanged between two observations serializes
    identically — the soundness property behind every (id, version)
    cache and the diff's version short-circuit."""
    document = build_page()
    root = document.document_element

    def observe():
        table = {}

        def walk(node):
            table[id(node)] = (node.subtree_version, serialize_node(node))
            for child in getattr(node, "child_nodes", ()):
                walk(child)

        walk(root)
        return table

    previous = observe()
    for op in ops:
        apply_mutation(document, op)
        current = observe()
        for node_id, (version, markup) in current.items():
            if node_id in previous and previous[node_id][0] == version:
                assert previous[node_id][1] == markup
        previous = current
