"""Byte-conservation invariant: attributed buckets sum to shipped bytes.

Every cost-attributed response must decompose exactly: the labeled
payload buckets (head / body / delta / userActions / docCookies) plus
the framing residual equal the bytes actually written to the
connection — for full, delta, long-poll, and push envelopes, on the
batched zero-copy path and the legacy string path alike.  And holding
the cost books must be free on the wire: a session with attribution
attached ships byte-identical traffic to one without.
"""

import string

from hypothesis import given, settings, strategies as st

from repro.browser import Browser
from repro.core import CoBrowsingSession, MouseMoveAction, RCBAgent
from repro.html import Text
from repro.net import LAN_PROFILE, Host, Network
from repro.net.socket import Connection
from repro.obs import PAYLOAD_BUCKETS, ByteAttribution
from repro.sim import Simulator
from repro.webserver import OriginServer, StaticSite

PAGE = (
    "<html><head><title>Conservation</title></head><body>"
    + "".join("<p id='p%d'>paragraph %d body</p>" % (i, i) for i in range(6))
    + "</body></html>"
)

ALL_BUCKETS = set(PAYLOAD_BUCKETS) | {"framing"}


class RecordingAttribution(ByteAttribution):
    """Keeps every finalized record so tests can audit each response."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.finalized = []

    def record(self, record):
        self.finalized.append(record)
        super().record(record)


def build_agent(batched=True, attribution=None):
    sim = Simulator()
    network = Network(sim)
    site = StaticSite("site.com")
    site.add_page("/", PAGE)
    OriginServer(network, "site.com", site.handle)
    host_pc = Host(network, "host-pc", LAN_PROFILE, segment="campus")
    browser = Browser(host_pc, name="host")
    agent = RCBAgent(enable_batched_serve=batched, attribution=attribution)
    agent.install(browser)
    sim.run_until_complete(sim.process(browser.navigate("http://site.com/")))
    return browser, agent


def edit_paragraph(browser, index, text):
    def mutate(document):
        target = document.get_element_by_id("p%d" % index)
        target.remove_all_children()
        target.append_child(Text(text if text else "x"))

    browser.mutate_document(mutate)


def serve_and_conserve(agent, member, their_time, actions, kind_hint=None):
    """Serve one poll response and assert the conservation invariant."""
    sink = agent.attribution
    before = len(sink.finalized)
    body, is_delta = agent._serve_body(member, their_time, actions)
    kind = kind_hint or ("delta" if is_delta else "full")
    response = agent._respond(body, participant=member, kind=kind)
    assert response.attribution is not None
    shipped = len(response.to_bytes())
    response.attribution.finalize(0.0, shipped)
    assert len(sink.finalized) == before + 1
    record = sink.finalized[-1]
    assert sum(record.buckets.values()) == shipped == record.shipped
    assert set(record.buckets) <= ALL_BUCKETS
    assert record.buckets.get("framing", 0) >= 0
    return record


class TestFixedEnvelopes:
    def test_full_envelope_decomposes(self):
        browser, agent = build_agent(attribution=RecordingAttribution())
        record = serve_and_conserve(agent, "m1", 0, [])
        assert record.kind == "full"
        assert record.buckets["head"] > 0
        assert record.buckets["body"] > 0
        assert record.buckets["framing"] > 0

    def test_delta_envelope_decomposes(self):
        browser, agent = build_agent(attribution=RecordingAttribution())
        base = agent.doc_time
        agent._serve_body("m1", 0, [])  # warm the snapshot ring
        edit_paragraph(browser, 0, "changed once")
        record = serve_and_conserve(agent, "m1", base, [])
        assert record.kind == "delta"
        assert record.buckets["delta"] > 0
        assert "head" not in record.buckets and "body" not in record.buckets

    def test_user_actions_bucket_matches_the_shipped_difference(self):
        """Serving the same state with vs. without actions must differ
        on the wire by exactly the userActions bucket growth — the
        splice is the only thing that changed."""
        browser, agent = build_agent(attribution=RecordingAttribution())
        bare = serve_and_conserve(agent, "m1", 0, [])
        with_actions = serve_and_conserve(
            agent, "m2", 0, [MouseMoveAction(10, 20), MouseMoveAction(30, 40)]
        )
        grew = with_actions.buckets["userActions"] - bare.buckets["userActions"]
        assert grew > 0
        assert with_actions.shipped - bare.shipped == grew
        assert with_actions.buckets["head"] == bare.buckets["head"]
        assert with_actions.buckets["body"] == bare.buckets["body"]

    def test_empty_and_action_only_envelopes(self):
        browser, agent = build_agent(attribution=RecordingAttribution())
        del browser
        response = agent._xml("", participant="m1", kind="empty")
        shipped = len(response.to_bytes())
        record = response.attribution.finalize(0.0, shipped)
        assert record.buckets == {"framing": shipped}

        xml = "<userActions>fake</userActions>"
        response = agent._xml(xml, participant="m1", kind="actions")
        shipped = len(response.to_bytes())
        record = response.attribution.finalize(0.0, shipped)
        assert record.buckets["userActions"] == len(xml.encode("utf-8"))
        assert sum(record.buckets.values()) == shipped

    def test_legacy_string_path_conserves_coarsely(self):
        browser, agent = build_agent(batched=False, attribution=RecordingAttribution())
        del browser
        record = serve_and_conserve(agent, "m1", 0, [])
        # The str pipeline has no section sizes: the whole envelope body
        # lands in the coarse ``body`` bucket, framing stays the HTTP head.
        assert set(record.buckets) == {"body", "framing"}

    def test_push_merge_preserves_bucket_sums(self):
        """``WirePlan.extend_plan`` (the push-stream envelope merge)
        must add bucket dicts the way it adds buffers."""
        browser, agent = build_agent(attribution=RecordingAttribution())
        base = agent.doc_time
        first, _ = agent._serve_body("m1", 0, [])
        edit_paragraph(browser, 0, "pushed update")
        second, _ = agent._serve_body("m1", base, [])
        merged_buckets = dict(first.buckets)
        for name, size in second.buckets.items():
            merged_buckets[name] = merged_buckets.get(name, 0) + size
        total_before = first.nbytes + second.nbytes
        first.extend_plan(second)
        assert first.buckets == merged_buckets
        assert first.nbytes == total_before
        record = agent.attribution.begin("host", "m1", "push", 0, first.buckets)
        record.finalize(0.0, first.nbytes + 90)  # + any HTTP head
        assert sum(record.buckets.values()) == first.nbytes + 90


class TestDisabledByDefaultIsFree:
    def test_attributed_and_dark_responses_are_byte_identical(self):
        browser_a, agent_a = build_agent(attribution=RecordingAttribution())
        browser_b, agent_b = build_agent(attribution=None)
        base = agent_a.doc_time
        for browser in (browser_a, browser_b):
            edit_paragraph(browser, 1, "same everywhere")
        for member, their_time in (("m1", 0), ("m2", base)):
            body_a, delta_a = agent_a._serve_body(member, their_time, [])
            body_b, delta_b = agent_b._serve_body(member, their_time, [])
            assert delta_a == delta_b
            response_a = agent_a._respond(body_a, participant=member)
            response_b = agent_b._respond(body_b, participant=member)
            assert response_a.to_bytes() == response_b.to_bytes()
            assert response_a.attribution is not None
            assert response_b.attribution is None


class TestSessionConservation:
    """End-to-end: every byte ``Connection.sendv`` ships for attributed
    responses is accounted for, across all three transports."""

    def run_session(self, transport, monkeypatch):
        sendv_totals = []
        original_sendv = Connection.sendv

        def counting_sendv(self, buffers):
            sendv_totals.append(sum(len(buffer) for buffer in buffers))
            return original_sendv(self, buffers)

        monkeypatch.setattr(Connection, "sendv", counting_sendv)

        sim = Simulator()
        network = Network(sim)
        site = StaticSite("site.com")
        site.add_page("/", PAGE)
        OriginServer(network, "site.com", site.handle)
        host_pc = Host(network, "host-pc", LAN_PROFILE, segment="campus")
        host = Browser(host_pc, name="host")
        attribution = RecordingAttribution()
        session = CoBrowsingSession(
            host, poll_interval=0.2, transport=transport, attribution=attribution
        )
        guests = [
            Browser(
                Host(network, "pc-%d" % i, LAN_PROFILE, segment="campus"),
                name="guest-%d" % i,
            )
            for i in range(3)
        ]

        def scenario():
            for guest in guests:
                yield from session.join(guest)
            yield from session.host_navigate("http://site.com/")
            yield from session.wait_until_synced()
            for tick in range(4):
                edit_paragraph(host, tick % 6, "tick %d over %s" % (tick, transport))
                yield sim.timeout(0.5)
            yield sim.timeout(1.0)

        sim.run_until_complete(sim.process(scenario()))
        session.close()
        return attribution, sendv_totals

    def check(self, attribution, sendv_totals):
        assert attribution.finalized, "the run must attribute responses"
        for record in attribution.finalized:
            assert sum(record.buckets.values()) == record.shipped
            assert set(record.buckets) <= ALL_BUCKETS
        # Every scatter-gather send was an attributed plan response:
        # the independent per-send byte counts match the records.
        planned = sorted(
            record.shipped
            for record in attribution.finalized
            if record.kind in ("full", "delta", "push")
        )
        assert sorted(sendv_totals) == planned
        assert attribution.total_bytes == sum(
            record.shipped for record in attribution.finalized
        )

    def test_poll_transport_conserves(self, monkeypatch):
        self.check(*self.run_session("poll", monkeypatch))

    def test_longpoll_transport_conserves(self, monkeypatch):
        attribution, sendv_totals = self.run_session("longpoll", monkeypatch)
        self.check(attribution, sendv_totals)

    def test_push_transport_conserves(self, monkeypatch):
        attribution, sendv_totals = self.run_session("push", monkeypatch)
        self.check(attribution, sendv_totals)
        assert "push" in attribution.per_kind


edits = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=5),
        st.text(alphabet=string.ascii_letters + string.digits + " .,!-", max_size=24),
    ),
    min_size=1,
    max_size=3,
)
polls = st.lists(
    st.tuples(st.integers(min_value=0, max_value=4), st.booleans()),
    min_size=1,
    max_size=5,
)


@settings(max_examples=20, deadline=None)
@given(edit_seq=edits, poll_mix=polls)
def test_conservation_property(edit_seq, poll_mix):
    """For random edit histories and member laggards, every attributed
    response conserves: bucket sum == serialized wire size."""
    browser, agent = build_agent(attribution=RecordingAttribution())
    history = [agent.doc_time]
    for index, text in edit_seq:
        agent._serve_body("warm", 0, [])
        edit_paragraph(browser, index, text)
        history.append(agent.doc_time)
    for slot, (behind, with_actions) in enumerate(poll_mix):
        their_time = 0 if behind >= len(history) else history[-1 - behind]
        actions = [MouseMoveAction(slot, behind)] if with_actions else []
        serve_and_conserve(agent, "m%d" % slot, their_time, actions)
