"""The SLO engine: rules, hysteresis, and the breach acceptance path.

Unit-tests the declarative machinery over a stub session (grading
boundaries, breach→recovery hysteresis, transition events, recorder
coupling, staleness windowing), then drives the headline acceptance
scenario end to end: a fan-out session whose tier-1 relay is killed
mid-run must produce a BREACH verdict naming the orphaned members, and
the flight recorder's black box must share trace IDs with real spans.
"""

import pytest

from repro.browser import Browser
from repro.core import CoBrowsingSession
from repro.net import LAN_PROFILE, Host, Network
from repro.obs import (
    BREACH,
    OK,
    RELAY_DEATH,
    SLO_BREACH,
    SLO_RECOVER,
    WARN,
    EventBus,
    FlightRecorder,
    HealthMonitor,
    HealthReport,
    MetricsRegistry,
    SloRule,
    Tracer,
    Verdict,
    default_rules,
)
from repro.sim import Simulator
from repro.webserver import OriginServer, StaticSite


class StubSim:
    def __init__(self):
        self.now = 0.0


class StubAgent:
    def __init__(self):
        self.doc_time = 0


class StubSession:
    """The minimal session surface HealthMonitor samples."""

    def __init__(self, events=None):
        self.sim = StubSim()
        self.metrics = MetricsRegistry()
        self.events = events
        self.agent = StubAgent()
        self.branching = None
        self.times = {}

    def member_times(self):
        return dict(self.times)


def dial_rule(readings):
    """A one-subject rule whose value is read from a mutable dict."""
    return SloRule(
        "dial", lambda monitor: dict(readings), warn=10.0, breach=20.0, unit="x"
    )


class TestSloRule:
    def test_grade_boundaries(self):
        rule = SloRule("r", lambda m: {}, warn=10.0, breach=20.0)
        assert rule.grade(9.99) == OK
        assert rule.grade(10.0) == WARN
        assert rule.grade(19.99) == WARN
        assert rule.grade(20.0) == BREACH

    def test_breach_below_warn_rejected(self):
        with pytest.raises(ValueError):
            SloRule("r", lambda m: {}, warn=10.0, breach=5.0)

    def test_default_rules_thresholds_are_tunable(self):
        rules = {
            rule.name: rule
            for rule in default_rules(
                staleness_warn_ms=400.0, staleness_breach_ms=750.0
            )
        }
        assert rules["staleness_p95"].breach == 750.0
        assert rules["staleness_p95"].grade(750.0) == BREACH

    def test_lowered_breach_requires_lowered_warn(self):
        with pytest.raises(ValueError):
            default_rules(staleness_breach_ms=750.0)  # warn still 2500


class TestReport:
    def verdict(self, level, subject="alice", rule="staleness_p95"):
        return Verdict(rule, subject, level, 1.0, 10.0, 20.0, "ms", 0.0)

    def test_level_is_worst_verdict(self):
        report = HealthReport(0.0, [self.verdict(OK), self.verdict(WARN)])
        assert report.level == WARN
        assert not report.ok
        assert HealthReport(0.0, []).ok

    def test_breached_subjects_dedup_across_rules(self):
        report = HealthReport(
            0.0,
            [
                self.verdict(BREACH, subject="carol"),
                self.verdict(BREACH, subject="carol", rule="resync_rate"),
                self.verdict(BREACH, subject="dave"),
                self.verdict(WARN, subject="erin"),
            ],
        )
        assert report.breached_subjects() == ["carol", "dave"]
        assert len(report.breaches()) == 3
        assert len(report.warnings()) == 1

    def test_to_dict_shape(self):
        verdict = Verdict("r", "s", WARN, 1.5, 1.0, 2.0, "ms", 3.0, detail="recovering")
        row = verdict.to_dict()
        assert row["detail"] == "recovering"
        assert "detail" not in self.verdict(OK).to_dict()
        report = HealthReport(3.0, [verdict])
        assert report.to_dict()["level"] == WARN


class TestHysteresis:
    def monitor(self, readings, **kwargs):
        session = StubSession(events=EventBus())
        kwargs.setdefault("rules", [dial_rule(readings)])
        return session, HealthMonitor(session, **kwargs)

    def test_breach_holds_warn_until_consecutive_oks(self):
        readings = {"alice": 25.0}
        _session, monitor = self.monitor(readings, recovery_checks=2)
        assert monitor.check().level == BREACH
        readings["alice"] = 1.0  # raw OK, but the subject just breached
        report = monitor.check()
        assert report.level == WARN
        assert report.verdicts[0].detail == "recovering"
        # Second consecutive OK clears the latch.
        assert monitor.check().level == OK
        assert monitor.worst_level == BREACH  # the CI gate remembers

    def test_warn_during_recovery_resets_the_streak(self):
        readings = {"alice": 25.0}
        _session, monitor = self.monitor(readings, recovery_checks=2)
        monitor.check()
        readings["alice"] = 1.0
        assert monitor.check().level == WARN  # OK streak = 1
        readings["alice"] = 15.0
        assert monitor.check().level == WARN  # raw WARN resets the streak
        readings["alice"] = 1.0
        assert monitor.check().level == WARN  # OK streak = 1 again
        assert monitor.check().level == OK

    def test_transitions_emit_bus_events_and_fire_recorder(self):
        readings = {"alice": 25.0}
        session, monitor = self.monitor(readings, recovery_checks=1)
        recorder = FlightRecorder(session.events, min_dump_interval=0.0)
        monitor.recorder = recorder
        monitor.check()
        breaches = session.events.events(type=SLO_BREACH)
        assert [event.node for event in breaches] == ["alice"]
        assert breaches[0].data["rule"] == "dial"
        assert breaches[0].data["value"] == 25.0
        assert [box["reason"] for box in recorder.dumps] == ["slo-breach:dial@alice"]
        # Staying breached is not a new transition.
        monitor.check()
        assert session.events.count(type=SLO_BREACH) == 1
        # Recovery emits exactly one slo.recover.
        readings["alice"] = 1.0
        monitor.check()
        recovers = session.events.events(type=SLO_RECOVER)
        assert [event.node for event in recovers] == ["alice"]


class TestStalenessSampling:
    def test_window_prunes_and_p95_follows(self):
        session = StubSession()
        monitor = HealthMonitor(session, window=5.0, rules=[])
        session.agent.doc_time = 1000
        session.times = {"alice": 0}
        session.sim.now = 1.0
        monitor.sample()
        assert monitor.staleness_p95("alice") == 1000.0
        # The member catches up; old samples age out of the window.
        session.times = {"alice": 1000}
        for step in range(2, 9):
            session.sim.now = float(step)
            monitor.sample()
        assert monitor.staleness_p95("alice") == 0.0
        assert session.metrics.gauge("health_staleness_ms", node="alice").value == 0.0

    def test_departed_member_ages_out(self):
        session = StubSession()
        monitor = HealthMonitor(session, window=2.0, rules=[])
        session.times = {"alice": 0}
        monitor.sample()
        session.times = {}
        session.sim.now = 5.0
        monitor.sample()
        assert monitor.staleness_p95("alice") == 0.0
        assert "alice" not in monitor._staleness

    def test_registry_fallback_without_bus(self):
        # No EventBus anywhere: the resync-rate rule falls back to the
        # registry's all-time counters and check() still grades.
        session = StubSession(events=None)
        monitor = HealthMonitor(session, rules=default_rules())
        session.sim.now = 60.0
        report = monitor.check()
        assert report.level == OK
        assert monitor.events is None


PAGE = (
    "<html><head><title>Health test</title></head>"
    "<body><h1>News</h1><p id='tick'>start</p></body></html>"
)


def build_world(participants=6):
    sim = Simulator()
    network = Network(sim)
    site = StaticSite("site.com")
    site.add_page("/", PAGE)
    OriginServer(network, "site.com", site.handle)
    host_pc = Host(network, "host-pc", LAN_PROFILE, segment="campus")
    host_browser = Browser(host_pc, name="bob")
    browsers = []
    for index in range(participants):
        pc = Host(network, "part-pc-%d" % index, LAN_PROFILE, segment="campus")
        browsers.append(Browser(pc, name="p%d" % index))
    return sim, host_browser, browsers


class TestBreachAcceptance:
    def test_relay_death_breaches_orphans_with_correlated_black_box(self):
        sim, host_browser, browsers = build_world()
        tracer = Tracer()
        events = EventBus()
        session = CoBrowsingSession(
            host_browser, poll_interval=0.2, tracer=tracer, events=events
        )
        session.fanout_tree(branching=2)
        recorder = FlightRecorder(events, registry=session.metrics, tracer=tracer)
        monitor = HealthMonitor(
            session,
            rules=default_rules(staleness_warn_ms=500.0, staleness_breach_ms=1000.0),
            window=10.0,
            recorder=recorder,
            sample_interval=0.1,
        )

        def scenario():
            for browser in browsers:
                yield from session.join(browser)
            yield from session.host_navigate("http://site.com/")
            yield from session.wait_until_synced()
            sim.process(monitor.run())
            orphans = list(session._nodes["p0"].children)
            for tick in range(40):
                if tick == 4:
                    session.fail_relay("p0")
                host_browser.mutate_document(
                    lambda doc, tick=tick: setattr(
                        doc.get_element_by_id("tick"), "inner_html", "tick %d" % tick
                    )
                )
                yield sim.timeout(0.25)
            monitor.sample()
            monitor.check()
            return orphans

        orphans = sim.run_until_complete(sim.process(scenario()))
        assert orphans == ["p2", "p4"]

        # The run breached, and the verdicts named the orphaned members.
        assert monitor.worst_level == BREACH
        breached = {
            event.node for event in events.events(type=SLO_BREACH)
            if event.data["rule"] == "staleness_p95"
        }
        assert breached
        assert breached <= set(orphans)

        # The injected death hit the log attributed to the dead relay,
        # and each orphan logged losing its upstream in its own ring.
        deaths = events.events(type=RELAY_DEATH)
        by_reason = {}
        for event in deaths:
            by_reason.setdefault(event.data["reason"], []).append(event.node)
        assert by_reason["injected"] == ["p0"]
        assert sorted(by_reason["upstream-lost"]) == orphans

        # The black box is correlated: the relay-death dump exists and
        # every trace it references is a real recorded trace.
        assert recorder.dumps
        box = recorder.dumps[0]
        assert box["reason"] == "event:%s" % RELAY_DEATH
        assert box["trace_ids"]
        span_traces = {span.trace_id for span in tracer.spans}
        assert set(box["trace_ids"]) <= span_traces
        assert box["spans"]
        assert any(row["name"] for row in box["metrics"])
        session.close()
