"""The SLO engine: rules, hysteresis, and the breach acceptance path.

Unit-tests the declarative machinery over a stub session (grading
boundaries, breach→recovery hysteresis, transition events, recorder
coupling, staleness windowing), then drives the headline acceptance
scenario end to end: a fan-out session whose tier-1 relay is killed
mid-run must produce a BREACH verdict naming the orphaned members, and
the flight recorder's black box must share trace IDs with real spans.
"""

import pytest

from repro.browser import Browser
from repro.core import CoBrowsingSession
from repro.net import LAN_PROFILE, Host, Network
from repro.obs import (
    BREACH,
    OK,
    RELAY_DEATH,
    SLO_BREACH,
    SLO_RECOVER,
    WARN,
    ByteAttribution,
    EventBus,
    FlightRecorder,
    HealthMonitor,
    HealthReport,
    MetricsRegistry,
    Profiler,
    SloRule,
    Tracer,
    Verdict,
    default_rules,
    perf_budget_rules,
)
from repro.sim import Simulator
from repro.webserver import OriginServer, StaticSite


class StubSim:
    def __init__(self):
        self.now = 0.0


class StubAgent:
    def __init__(self):
        self.doc_time = 0


class StubSession:
    """The minimal session surface HealthMonitor samples."""

    def __init__(self, events=None):
        self.sim = StubSim()
        self.metrics = MetricsRegistry()
        self.events = events
        self.agent = StubAgent()
        self.branching = None
        self.times = {}

    def member_times(self):
        return dict(self.times)


def dial_rule(readings):
    """A one-subject rule whose value is read from a mutable dict."""
    return SloRule(
        "dial", lambda monitor: dict(readings), warn=10.0, breach=20.0, unit="x"
    )


class TestSloRule:
    def test_grade_boundaries(self):
        rule = SloRule("r", lambda m: {}, warn=10.0, breach=20.0)
        assert rule.grade(9.99) == OK
        assert rule.grade(10.0) == WARN
        assert rule.grade(19.99) == WARN
        assert rule.grade(20.0) == BREACH

    def test_breach_below_warn_rejected(self):
        with pytest.raises(ValueError):
            SloRule("r", lambda m: {}, warn=10.0, breach=5.0)

    def test_default_rules_thresholds_are_tunable(self):
        rules = {
            rule.name: rule
            for rule in default_rules(
                staleness_warn_ms=400.0, staleness_breach_ms=750.0
            )
        }
        assert rules["staleness_p95"].breach == 750.0
        assert rules["staleness_p95"].grade(750.0) == BREACH

    def test_lowered_breach_requires_lowered_warn(self):
        with pytest.raises(ValueError):
            default_rules(staleness_breach_ms=750.0)  # warn still 2500


class TestReport:
    def verdict(self, level, subject="alice", rule="staleness_p95"):
        return Verdict(rule, subject, level, 1.0, 10.0, 20.0, "ms", 0.0)

    def test_level_is_worst_verdict(self):
        report = HealthReport(0.0, [self.verdict(OK), self.verdict(WARN)])
        assert report.level == WARN
        assert not report.ok
        assert HealthReport(0.0, []).ok

    def test_breached_subjects_dedup_across_rules(self):
        report = HealthReport(
            0.0,
            [
                self.verdict(BREACH, subject="carol"),
                self.verdict(BREACH, subject="carol", rule="resync_rate"),
                self.verdict(BREACH, subject="dave"),
                self.verdict(WARN, subject="erin"),
            ],
        )
        assert report.breached_subjects() == ["carol", "dave"]
        assert len(report.breaches()) == 3
        assert len(report.warnings()) == 1

    def test_to_dict_shape(self):
        verdict = Verdict("r", "s", WARN, 1.5, 1.0, 2.0, "ms", 3.0, detail="recovering")
        row = verdict.to_dict()
        assert row["detail"] == "recovering"
        assert "detail" not in self.verdict(OK).to_dict()
        report = HealthReport(3.0, [verdict])
        assert report.to_dict()["level"] == WARN


class TestHysteresis:
    def monitor(self, readings, **kwargs):
        session = StubSession(events=EventBus())
        kwargs.setdefault("rules", [dial_rule(readings)])
        return session, HealthMonitor(session, **kwargs)

    def test_breach_holds_warn_until_consecutive_oks(self):
        readings = {"alice": 25.0}
        _session, monitor = self.monitor(readings, recovery_checks=2)
        assert monitor.check().level == BREACH
        readings["alice"] = 1.0  # raw OK, but the subject just breached
        report = monitor.check()
        assert report.level == WARN
        assert report.verdicts[0].detail == "recovering"
        # Second consecutive OK clears the latch.
        assert monitor.check().level == OK
        assert monitor.worst_level == BREACH  # the CI gate remembers

    def test_warn_during_recovery_resets_the_streak(self):
        readings = {"alice": 25.0}
        _session, monitor = self.monitor(readings, recovery_checks=2)
        monitor.check()
        readings["alice"] = 1.0
        assert monitor.check().level == WARN  # OK streak = 1
        readings["alice"] = 15.0
        assert monitor.check().level == WARN  # raw WARN resets the streak
        readings["alice"] = 1.0
        assert monitor.check().level == WARN  # OK streak = 1 again
        assert monitor.check().level == OK

    def test_transitions_emit_bus_events_and_fire_recorder(self):
        readings = {"alice": 25.0}
        session, monitor = self.monitor(readings, recovery_checks=1)
        recorder = FlightRecorder(session.events, min_dump_interval=0.0)
        monitor.recorder = recorder
        monitor.check()
        breaches = session.events.events(type=SLO_BREACH)
        assert [event.node for event in breaches] == ["alice"]
        assert breaches[0].data["rule"] == "dial"
        assert breaches[0].data["value"] == 25.0
        assert [box["reason"] for box in recorder.dumps] == ["slo-breach:dial@alice"]
        # Staying breached is not a new transition.
        monitor.check()
        assert session.events.count(type=SLO_BREACH) == 1
        # Recovery emits exactly one slo.recover.
        readings["alice"] = 1.0
        monitor.check()
        recovers = session.events.events(type=SLO_RECOVER)
        assert [event.node for event in recovers] == ["alice"]


class TestStalenessSampling:
    def test_window_prunes_and_p95_follows(self):
        session = StubSession()
        monitor = HealthMonitor(session, window=5.0, rules=[])
        session.agent.doc_time = 1000
        session.times = {"alice": 0}
        session.sim.now = 1.0
        monitor.sample()
        assert monitor.staleness_p95("alice") == 1000.0
        # The member catches up; old samples age out of the window.
        session.times = {"alice": 1000}
        for step in range(2, 9):
            session.sim.now = float(step)
            monitor.sample()
        assert monitor.staleness_p95("alice") == 0.0
        assert session.metrics.gauge("health_staleness_ms", node="alice").value == 0.0

    def test_departed_member_ages_out(self):
        session = StubSession()
        monitor = HealthMonitor(session, window=2.0, rules=[])
        session.times = {"alice": 0}
        monitor.sample()
        session.times = {}
        session.sim.now = 5.0
        monitor.sample()
        assert monitor.staleness_p95("alice") == 0.0
        assert "alice" not in monitor._staleness

    def test_registry_fallback_without_bus(self):
        # No EventBus anywhere: the resync-rate rule falls back to the
        # registry's all-time counters and check() still grades.
        session = StubSession(events=None)
        monitor = HealthMonitor(session, rules=default_rules())
        session.sim.now = 60.0
        report = monitor.check()
        assert report.level == OK
        assert monitor.events is None


PAGE = (
    "<html><head><title>Health test</title></head>"
    "<body><h1>News</h1><p id='tick'>start</p></body></html>"
)


def build_world(participants=6):
    sim = Simulator()
    network = Network(sim)
    site = StaticSite("site.com")
    site.add_page("/", PAGE)
    OriginServer(network, "site.com", site.handle)
    host_pc = Host(network, "host-pc", LAN_PROFILE, segment="campus")
    host_browser = Browser(host_pc, name="bob")
    browsers = []
    for index in range(participants):
        pc = Host(network, "part-pc-%d" % index, LAN_PROFILE, segment="campus")
        browsers.append(Browser(pc, name="p%d" % index))
    return sim, host_browser, browsers


class TestBreachAcceptance:
    def test_relay_death_breaches_orphans_with_correlated_black_box(self):
        sim, host_browser, browsers = build_world()
        tracer = Tracer()
        events = EventBus()
        session = CoBrowsingSession(
            host_browser, poll_interval=0.2, tracer=tracer, events=events
        )
        session.fanout_tree(branching=2)
        recorder = FlightRecorder(events, registry=session.metrics, tracer=tracer)
        monitor = HealthMonitor(
            session,
            rules=default_rules(staleness_warn_ms=500.0, staleness_breach_ms=1000.0),
            window=10.0,
            recorder=recorder,
            sample_interval=0.1,
        )

        def scenario():
            for browser in browsers:
                yield from session.join(browser)
            yield from session.host_navigate("http://site.com/")
            yield from session.wait_until_synced()
            sim.process(monitor.run())
            orphans = list(session._nodes["p0"].children)
            for tick in range(40):
                if tick == 4:
                    session.fail_relay("p0")
                host_browser.mutate_document(
                    lambda doc, tick=tick: setattr(
                        doc.get_element_by_id("tick"), "inner_html", "tick %d" % tick
                    )
                )
                yield sim.timeout(0.25)
            monitor.sample()
            monitor.check()
            return orphans

        orphans = sim.run_until_complete(sim.process(scenario()))
        assert orphans == ["p2", "p4"]

        # The run breached, and the verdicts named the orphaned members.
        assert monitor.worst_level == BREACH
        breached = {
            event.node for event in events.events(type=SLO_BREACH)
            if event.data["rule"] == "staleness_p95"
        }
        assert breached
        assert breached <= set(orphans)

        # The injected death hit the log attributed to the dead relay,
        # and each orphan logged losing its upstream in its own ring.
        deaths = events.events(type=RELAY_DEATH)
        by_reason = {}
        for event in deaths:
            by_reason.setdefault(event.data["reason"], []).append(event.node)
        assert by_reason["injected"] == ["p0"]
        assert sorted(by_reason["upstream-lost"]) == orphans

        # The black box is correlated: the relay-death dump exists and
        # every trace it references is a real recorded trace.
        assert recorder.dumps
        box = recorder.dumps[0]
        assert box["reason"] == "event:%s" % RELAY_DEATH
        assert box["trace_ids"]
        span_traces = {span.trace_id for span in tracer.spans}
        assert set(box["trace_ids"]) <= span_traces
        assert box["spans"]
        assert any(row["name"] for row in box["metrics"])
        session.close()


class TestPerfBudgetRules:
    def test_no_feeds_means_no_subjects(self):
        session = StubSession()
        monitor = HealthMonitor(session, rules=perf_budget_rules())
        report = monitor.check()
        assert report.verdicts == []
        assert report.level == OK

    def test_rules_auto_append_only_with_a_feed(self):
        plain = HealthMonitor(StubSession())
        assert not any(r.name == "serve_self_p95" for r in plain.rules)
        profiled = HealthMonitor(StubSession(), profiler=Profiler(Tracer()))
        assert any(r.name == "serve_self_p95" for r in profiled.rules)
        attributed = HealthMonitor(StubSession(), attribution=ByteAttribution())
        assert any(r.name == "member_uplink_bytes" for r in attributed.rules)

    def test_serve_self_p95_grades_from_the_window_profile(self):
        tracer = Tracer()
        serve = tracer.start_span("host.serve", t=0.0, node="host")
        serve.finish(0.7)  # 700 ms of self-time: past the 500 ms breach
        session = StubSession()
        session.sim.now = 1.0
        monitor = HealthMonitor(
            session, rules=perf_budget_rules(), profiler=Profiler(tracer)
        )
        report = monitor.check()
        verdict = next(v for v in report.verdicts if v.rule == "serve_self_p95")
        assert verdict.subject == "host"
        assert verdict.level == BREACH
        assert verdict.value == pytest.approx(700.0)

    def test_hold_children_do_not_count_as_serve_work(self):
        tracer = Tracer()
        serve = tracer.start_span("host.serve", t=0.0, node="host")
        tracer.start_span("transport.hold", t=0.0, parent=serve, node="host").finish(0.69)
        serve.finish(0.7)  # 10 ms of actual work under a 690 ms hold
        session = StubSession()
        session.sim.now = 1.0
        monitor = HealthMonitor(
            session, rules=perf_budget_rules(), profiler=Profiler(tracer)
        )
        report = monitor.check()
        verdict = next(v for v in report.verdicts if v.rule == "serve_self_p95")
        assert verdict.level == OK
        assert verdict.value == pytest.approx(10.0)

    def test_generate_wall_p95_uses_the_wall_axis(self):
        tracer = Tracer()
        tracer.start_span(
            "host.generate", t=0.5, node="host", wall_seconds=0.06
        ).finish(0.5)
        session = StubSession()
        session.sim.now = 1.0
        monitor = HealthMonitor(
            session, rules=perf_budget_rules(), profiler=Profiler(tracer)
        )
        report = monitor.check()
        verdict = next(v for v in report.verdicts if v.rule == "generate_wall_p95")
        assert verdict.level == BREACH  # 60 ms wall > 50 ms budget
        assert verdict.value == pytest.approx(60.0)

    def test_member_uplink_grades_attribution_rates(self):
        attribution = ByteAttribution(window=10.0)
        attribution.begin("host", "hog", "full", 1, {}).finalize(5.0, 10 * 300000)
        attribution.begin("host", "mouse", "delta", 1, {}).finalize(5.0, 100)
        session = StubSession()
        session.sim.now = 10.0
        monitor = HealthMonitor(
            session, rules=perf_budget_rules(), attribution=attribution
        )
        report = monitor.check()
        by_subject = {
            v.subject: v for v in report.verdicts if v.rule == "member_uplink_bytes"
        }
        assert by_subject["hog"].level == BREACH
        assert by_subject["mouse"].level == OK

    def test_window_profile_cached_per_check_time(self):
        tracer = Tracer()
        tracer.start_span("host.serve", t=0.0, node="host").finish(0.1)
        session = StubSession()
        session.sim.now = 1.0
        monitor = HealthMonitor(session, profiler=Profiler(tracer))
        assert monitor.window_profile() is monitor.window_profile()
        session.sim.now = 2.0
        first = monitor._profile_cache[1]
        assert monitor.window_profile() is not first


class TestHotMemberBreachAcceptance:
    def test_resync_storm_breaches_uplink_budget_with_evidence(self):
        """A hot member that keeps forcing full resyncs must trip the
        ``member_uplink_bytes`` perf budget *naming that member*, and
        the breach black box must land with the trailing-window flame
        graph and the attribution table pointing at the same member."""
        sim, host_browser, browsers = build_world(participants=3)
        tracer = Tracer()
        events = EventBus()
        attribution = ByteAttribution(window=5.0)
        profiler = Profiler(tracer)
        session = CoBrowsingSession(
            host_browser,
            poll_interval=0.2,
            tracer=tracer,
            events=events,
            attribution=attribution,
        )
        recorder = FlightRecorder(
            events,
            registry=session.metrics,
            tracer=tracer,
            profiler=profiler,
            attribution=attribution,
            min_dump_interval=0.0,
        )
        monitor = HealthMonitor(
            session,
            rules=default_rules()
            + perf_budget_rules(
                uplink_warn_bytes_s=1200.0, uplink_breach_bytes_s=2400.0
            ),
            window=5.0,
            recorder=recorder,
            profiler=profiler,
            attribution=attribution,
            sample_interval=0.25,
        )

        def scenario():
            snippets = {}
            for index, browser in enumerate(browsers):
                snippets["p%d" % index] = yield from session.join(
                    browser, participant_id="p%d" % index
                )
            yield from session.host_navigate("http://site.com/")
            yield from session.wait_until_synced()
            sim.process(monitor.run())
            hot = snippets["p1"]

            def storm():
                # The hot member's state keeps regressing: every poll
                # advertises ackTime 0, so the host serves it the full
                # envelope every interval while its peers ride deltas.
                while hot.connected:
                    hot.last_doc_time = 0
                    yield sim.timeout(0.05)

            sim.process(storm())
            for tick in range(32):
                host_browser.mutate_document(
                    lambda doc, tick=tick: setattr(
                        doc.get_element_by_id("tick"),
                        "inner_html",
                        "storm tick %d with enough text to weigh the envelope down %d"
                        % (tick, tick),
                    )
                )
                yield sim.timeout(0.25)
            monitor.sample()
            monitor.check()

        sim.run_until_complete(sim.process(scenario()))

        # The budget breached and the verdict names the hot member.
        assert monitor.worst_level == BREACH
        breaches = [
            event
            for event in events.events(type=SLO_BREACH)
            if event.data["rule"] == "member_uplink_bytes"
        ]
        assert breaches, "the uplink budget must trip"
        assert {event.node for event in breaches} == {"p1"}

        # The hot member is the fleet's top cost, with clear daylight.
        top_member, top_bytes = attribution.top_members(1)[0]
        assert top_member == "p1"
        runner_up = attribution.top_members(2)[1][1]
        assert top_bytes > 1.25 * runner_up

        # The breach black box carries the evidence: the flame graph
        # (trailing-window profile) and the attribution rollups that
        # point at the same member.
        box = next(
            box
            for box in recorder.dumps
            if box["reason"] == "slo-breach:member_uplink_bytes@p1"
        )
        assert box["profile"]["spans"] > 0
        # LAN serves are sim-instantaneous, so the flame graph lives on
        # the wall-compute axis here.
        assert box["profile"]["collapsed_wall"], "the box embeds flame-graph stacks"
        assert "host.serve" in box["profile"]["kinds"]
        per_member = box["attribution"]["per_member"]
        assert "p1" in per_member
        assert sum(per_member["p1"].values()) == max(
            sum(row.values()) for row in per_member.values()
        )
        session.close()


class TestIdleWindowEviction:
    """Large sim-time jumps between samples must not leave stale
    staleness observations grading the present."""

    def test_check_after_idle_jump_reads_an_empty_window(self):
        session = StubSession()
        monitor = HealthMonitor(session, window=5.0, rules=[])
        session.agent.doc_time = 1000
        session.times = {"alice": 0}
        session.sim.now = 1.0
        monitor.sample()
        assert monitor.staleness_p95("alice") == 1000.0
        # The session idles: sim-time jumps far past the window with no
        # intervening sample().  A direct read must prune, not grade on
        # the pre-jump observation.
        session.sim.now = 500.0
        assert monitor.staleness_p95("alice") == 0.0
        assert "alice" not in monitor._staleness

    def test_fresh_sample_after_the_jump_stands_alone(self):
        session = StubSession()
        monitor = HealthMonitor(session, window=5.0, rules=[])
        session.agent.doc_time = 10
        session.times = {"alice": 0}
        session.sim.now = 1.0
        monitor.sample()
        session.sim.now = 500.0
        session.agent.doc_time = 12
        session.times = {"alice": 11}
        monitor.sample()
        # Only the post-jump observation (staleness 1 tick = ms-scaled
        # doc-time gap) is in the window.
        assert len(monitor._staleness["alice"]) == 1
        assert monitor.staleness_p95("alice") == monitor.staleness_ms()["alice"]

    def test_rule_values_prune_through_the_same_path(self):
        session = StubSession()
        monitor = HealthMonitor(session, window=5.0, rules=default_rules())
        session.agent.doc_time = 10000
        session.times = {"alice": 0}
        session.sim.now = 1.0
        monitor.sample()
        report_hot = monitor.check()
        assert report_hot.level == BREACH
        # Idle jump: the same rule set reads a pruned (zero) staleness
        # without any new sample; hysteresis holds the grade at WARN
        # for one recovering check, then releases to OK.
        session.agent.doc_time = 0
        session.times = {"alice": 0}
        session.sim.now = 500.0
        report_idle = monitor.check()
        staleness = [
            v for v in report_idle.verdicts if v.rule == "staleness_p95"
        ]
        assert [v.value for v in staleness] == [0.0]
        assert report_idle.level == WARN  # recovering, not still-breached
        session.sim.now = 501.0
        assert monitor.check().level == OK
