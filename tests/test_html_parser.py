"""Unit tests for tokenizer, parser, serializer behaviour."""


from repro.html import (
    Comment,
    Element,
    Text,
    decode_entities,
    escape_attribute,
    escape_text,
    parse_document,
    parse_fragment,
    serialize_document,
    serialize_node,
)


class TestEntities:
    def test_decode_named(self):
        assert decode_entities("a &amp; b &lt;c&gt;") == "a & b <c>"

    def test_decode_numeric(self):
        assert decode_entities("&#65;&#x42;") == "AB"

    def test_unknown_entity_left_alone(self):
        assert decode_entities("&bogus; &") == "&bogus; &"

    def test_unterminated_left_alone(self):
        assert decode_entities("AT&T rocks") == "AT&T rocks"

    def test_escape_text(self):
        assert escape_text("a<b>&c") == "a&lt;b&gt;&amp;c"

    def test_escape_attribute_quotes(self):
        assert escape_attribute('say "hi" & <go>') == "say &quot;hi&quot; &amp; &lt;go&gt;"

    def test_escape_decode_round_trip(self):
        original = 'tricky <text> & "quotes"'
        assert decode_entities(escape_text(original)) == original


class TestFragmentParsing:
    def test_simple_fragment(self):
        nodes = parse_fragment("<p>one</p><p>two</p>")
        assert [n.tag for n in nodes] == ["p", "p"]
        assert all(n.parent is None for n in nodes)

    def test_text_and_elements(self):
        nodes = parse_fragment("before<b>bold</b>after")
        assert isinstance(nodes[0], Text)
        assert nodes[1].tag == "b"
        assert isinstance(nodes[2], Text)

    def test_attributes_parsed(self):
        (node,) = parse_fragment('<a href="/x" target=_blank disabled>go</a>')
        assert node.get_attribute("href") == "/x"
        assert node.get_attribute("target") == "_blank"
        assert node.get_attribute("disabled") == ""

    def test_single_quoted_attribute(self):
        (node,) = parse_fragment("<div id='main'></div>")
        assert node.get_attribute("id") == "main"

    def test_attribute_entities_decoded(self):
        (node,) = parse_fragment('<a href="/x?a=1&amp;b=2"></a>')
        assert node.get_attribute("href") == "/x?a=1&b=2"

    def test_void_elements_do_not_nest(self):
        nodes = parse_fragment("<img src=a.png><p>after</p>")
        assert [getattr(n, "tag", None) for n in nodes] == ["img", "p"]
        assert nodes[0].child_nodes == []

    def test_self_closing_syntax(self):
        (node,) = parse_fragment("<div/>")
        assert node.child_nodes == []

    def test_comment(self):
        nodes = parse_fragment("<!-- hello -->")
        assert isinstance(nodes[0], Comment)
        assert nodes[0].data == " hello "

    def test_script_raw_text(self):
        (node,) = parse_fragment("<script>if (a < b && c > d) { x(); }</script>")
        assert node.tag == "script"
        assert node.child_nodes[0].data == "if (a < b && c > d) { x(); }"

    def test_script_end_tag_lookalike_inside_string(self):
        (node,) = parse_fragment("<script>var s = '</scriptx>';</script>")
        assert "</scriptx>" in node.child_nodes[0].data

    def test_style_raw_text(self):
        (node,) = parse_fragment("<style>a > b { color: red; }</style>")
        assert node.child_nodes[0].data == "a > b { color: red; }"

    def test_mismatched_end_tag_ignored(self):
        nodes = parse_fragment("<div>x</span></div>")
        assert nodes[0].text_content == "x"

    def test_unclosed_elements_closed_at_eof(self):
        nodes = parse_fragment("<div><p>deep")
        assert nodes[0].tag == "div"
        assert nodes[0].children[0].tag == "p"

    def test_implied_p_close(self):
        nodes = parse_fragment("<p>one<p>two")
        assert [n.tag for n in nodes] == ["p", "p"]

    def test_implied_li_close(self):
        (ul,) = parse_fragment("<ul><li>a<li>b</ul>")
        assert len(ul.children) == 2

    def test_stray_angle_bracket_is_text(self):
        nodes = parse_fragment("a < b")
        assert "".join(n.data for n in nodes if isinstance(n, Text)) == "a < b"

    def test_adjacent_text_merged(self):
        nodes = parse_fragment("a&amp;b")
        assert len(nodes) == 1
        assert nodes[0].data == "a&b"

    def test_empty_fragment(self):
        assert parse_fragment("") == []

    def test_duplicate_attribute_first_wins(self):
        (node,) = parse_fragment('<a id="first" id="second"></a>')
        assert node.get_attribute("id") == "first"


class TestDocumentParsing:
    def test_full_document(self):
        doc = parse_document(
            "<!DOCTYPE html><html><head><title>T</title></head>"
            "<body><h1>Hi</h1></body></html>"
        )
        assert doc.doctype.lower() == "doctype html"
        assert doc.title == "T"
        assert doc.body.children[0].tag == "h1"

    def test_missing_html_element_synthesized(self):
        doc = parse_document("<p>bare</p>")
        assert doc.document_element is not None
        assert doc.head is not None
        assert doc.body.text_content == "bare"

    def test_head_elements_routed_to_head(self):
        doc = parse_document("<title>T</title><p>body text</p>")
        assert doc.title == "T"
        assert doc.body.text_content == "body text"

    def test_missing_head_synthesized(self):
        doc = parse_document("<html><body>x</body></html>")
        assert doc.head is not None
        assert doc.head.child_nodes == []

    def test_missing_body_synthesized(self):
        doc = parse_document("<html><head></head></html>")
        assert doc.body is not None

    def test_frameset_document_has_no_body(self):
        doc = parse_document(
            "<html><head><title>F</title></head>"
            "<frameset cols='*,*'><frame src='l.html'><frame src='r.html'></frameset>"
            "<noframes><body>no frames</body></noframes></html>"
        )
        assert doc.body is None
        assert doc.frameset is not None
        noframes = doc.document_element.get_elements_by_tag_name("noframes")
        assert len(noframes) == 1

    def test_head_comes_before_body(self):
        doc = parse_document("<html><body>x</body><head></head></html>")
        tags = [c.tag for c in doc.document_element.children]
        assert tags.index("head") < tags.index("body")


class TestSerialization:
    def test_document_round_trip_idempotent(self):
        markup = (
            '<!DOCTYPE html><html><head><title>T &amp; U</title>'
            '<style>a > b {}</style></head>'
            '<body class="main"><p>hi<br>there</p>'
            '<img src="/x.png"><!--note--></body></html>'
        )
        once = serialize_document(parse_document(markup))
        twice = serialize_document(parse_document(once))
        assert once == twice

    def test_raw_text_not_escaped(self):
        doc = parse_document("<html><head><script>a && b</script></head><body></body></html>")
        assert "a && b" in serialize_document(doc)

    def test_void_element_no_end_tag(self):
        (img,) = parse_fragment('<img src="a.png">')
        assert serialize_node(img) == '<img src="a.png">'

    def test_boolean_attribute_serialization(self):
        (inp,) = parse_fragment("<input disabled>")
        assert serialize_node(inp) == "<input disabled>"

    def test_attribute_escaping(self):
        el = Element("div", {"title": 'has "quotes" & amps'})
        assert serialize_node(el) == '<div title="has &quot;quotes&quot; &amp; amps"></div>'

    def test_comment_preserved(self):
        doc = parse_document("<html><body><!-- keep me --></body></html>")
        assert "<!-- keep me -->" in serialize_document(doc)

    def test_text_round_trip_with_specials(self):
        el = Element("div")
        el.append_child(Text('x < y & z > w "q"'))
        reparsed = parse_fragment(serialize_node(el))
        assert reparsed[0].text_content == 'x < y & z > w "q"'
