"""Failure-injection tests: what happens when pieces of the world break.

A practical co-browsing tool must degrade gracefully: origin outages,
the host stopping the agent, participants vanishing, hostile traffic on
the agent port, cache evictions between generation and object fetch.
"""

import pytest

from repro.browser import Browser, NavigationError
from repro.core import CoBrowsingSession
from repro.http import HttpClient
from repro.net import LAN_PROFILE, Host, Network
from repro.sim import Simulator
from repro.webserver import OriginServer, StaticSite


def build_world():
    sim = Simulator()
    network = Network(sim)
    site = StaticSite("site.com")
    site.add_page(
        "/",
        "<html><head><title>One</title></head>"
        '<body><img src="/a.png"><p>hello</p></body></html>',
    )
    site.add_page("/two", "<html><head><title>Two</title></head><body>2</body></html>")
    site.add("/a.png", "image/png", b"\x89PNG" + b"a" * 3000)
    origin = OriginServer(network, "site.com", site.handle)
    host_pc = Host(network, "host-pc", LAN_PROFILE, segment="campus")
    part_pc = Host(network, "part-pc", LAN_PROFILE, segment="campus")
    hb = Browser(host_pc, name="bob")
    pb = Browser(part_pc, name="alice")
    return sim, network, origin, hb, pb


def run(sim, generator, limit=1e9):
    return sim.run_until_complete(sim.process(generator), limit=limit)


class TestOriginOutage:
    def test_participant_keeps_last_page_when_origin_dies(self):
        sim, _network, origin, hb, pb = build_world()
        session = CoBrowsingSession(hb)

        def scenario():
            yield from session.join(pb)
            yield from session.host_navigate("http://site.com/")
            yield from session.wait_until_synced()
            origin.stop()
            with pytest.raises(NavigationError):
                yield from session.host_navigate("http://site.com/two")
            # Nothing new was pushed; the participant still has page one.
            yield sim.timeout(3)
            return "done"

        assert run(sim, scenario()) == "done"
        assert pb.page.document.title == "One"
        assert hb.page.document.title == "One"  # failed navigation kept state

    def test_session_continues_on_other_sites_after_outage(self):
        sim, network, origin, hb, pb = build_world()
        other = StaticSite("other.com")
        other.add_page("/", "<html><head><title>Other</title></head><body>o</body></html>")
        OriginServer(network, "other.com", other.handle)
        session = CoBrowsingSession(hb)

        def scenario():
            yield from session.join(pb)
            yield from session.host_navigate("http://site.com/")
            yield from session.wait_until_synced()
            origin.stop()
            with pytest.raises(NavigationError):
                yield from session.host_navigate("http://site.com/two")
            yield from session.host_navigate("http://other.com/")
            yield from session.wait_until_synced()

        run(sim, scenario())
        assert pb.page.document.title == "Other"

    def test_cache_mode_survives_origin_outage(self):
        """With cache mode, a revisit after the origin dies still renders
        for the participant — the paper's accessibility benefit."""
        sim, _network, origin, hb, pb = build_world()
        session = CoBrowsingSession(hb, cache_mode=True)

        def scenario():
            yield from session.join(pb)
            yield from session.host_navigate("http://site.com/")
            yield from session.wait_until_synced()
            origin.stop()
            # The host mutates the current page (no origin contact).
            hb.mutate_document(
                lambda doc: setattr(
                    doc.get_elements_by_tag_name("p")[0], "inner_html", "offline update"
                )
            )
            yield from session.wait_until_synced()

        run(sim, scenario())
        assert "offline update" in pb.page.document.body.text_content
        # The image still came from the host's cache, not the dead origin.
        assert all("host-pc:3000" in o.url for o in pb.page.objects)


class TestAgentShutdown:
    def test_snippet_gives_up_after_repeated_failures(self):
        sim, _network, _origin, hb, pb = build_world()
        session = CoBrowsingSession(hb)

        def scenario():
            snippet = yield from session.join(pb)
            yield from session.host_navigate("http://site.com/")
            yield from session.wait_until_synced()
            session.agent.uninstall()
            pb.client.close()  # the pooled connection dies with the agent
            yield sim.timeout(30)
            return snippet

        snippet = run(sim, scenario())
        assert not snippet.connected
        assert snippet.stats.connection_errors > 0
        assert snippet.stats.connection_errors <= snippet.max_poll_failures + 1
        # The last synced page is still displayed.
        assert pb.page.document.title == "One"

    def test_agent_survives_participant_disappearing(self):
        sim, _network, _origin, hb, pb = build_world()
        session = CoBrowsingSession(hb)

        def scenario():
            snippet = yield from session.join(pb)
            yield from session.host_navigate("http://site.com/")
            yield from session.wait_until_synced()
            # The participant vanishes without saying goodbye.
            snippet.disconnect()
            pb.client.close()
            yield from session.host_navigate("http://site.com/two")
            yield sim.timeout(3)

        run(sim, scenario())
        assert hb.page.document.title == "Two"
        assert session.agent.stats["auth_failures"] == 0


class TestHostileTraffic:
    def test_garbage_on_agent_port(self):
        sim, network, _origin, hb, pb = build_world()
        session = CoBrowsingSession(hb)
        attacker_pc = Host(network, "attacker-pc", LAN_PROFILE, segment="campus")

        def scenario():
            snippet = yield from session.join(pb)
            conn = yield attacker_pc.connect("host-pc", 3000)
            yield conn.send(b"\x00\xffGARBAGE\r\n\r\n")
            reply = yield conn.recv()
            assert reply.startswith(b"HTTP/1.1 400")
            # The legitimate session is unaffected.
            yield from session.host_navigate("http://site.com/")
            yield from session.wait_until_synced()
            return snippet

        run(sim, scenario())
        assert pb.page.document.title == "One"

    def test_unknown_methods_rejected(self):
        sim, _network, _origin, hb, pb = build_world()
        CoBrowsingSession(hb)
        client = HttpClient(pb.host)

        def scenario():
            response = yield from client.request("DELETE", "http://host-pc:3000/")
            return response

        assert run(sim, scenario()).status == 404

    def test_oversized_poll_header_handled(self):
        sim, network, _origin, hb, _pb = build_world()
        CoBrowsingSession(hb)
        attacker_pc = Host(network, "attacker2-pc", LAN_PROFILE, segment="campus")

        def scenario():
            conn = yield attacker_pc.connect("host-pc", 3000)
            yield conn.send(b"GET / HTTP/1.1\r\nX-Junk: " + b"j" * 70000)
            reply = yield conn.recv()
            return reply

        assert run(sim, scenario()).startswith(b"HTTP/1.1 400")


class TestCacheChurn:
    def test_evicted_object_returns_404_but_session_survives(self):
        sim, _network, _origin, hb, pb = build_world()
        session = CoBrowsingSession(hb, cache_mode=True)

        def scenario():
            yield from session.join(pb)
            yield from session.host_navigate("http://site.com/")
            yield from session.wait_until_synced()
            # The host's cache is purged between generation and a refetch.
            hb.clear_cache()
            pb.clear_cache()
            elapsed = yield from pb.fetch_current_objects()
            return elapsed

        run(sim, scenario())
        # The object request 404s; the page keeps rendering without it.
        assert pb.page.objects == []
        assert pb.page.document.title == "One"

    def test_rapid_mutations_converge_to_latest(self):
        """The timestamp protocol never leaves a participant on a stale
        intermediate state once the host settles."""
        sim, _network, _origin, hb, pb = build_world()
        session = CoBrowsingSession(hb, poll_interval=0.3)

        def scenario():
            yield from session.join(pb)
            yield from session.host_navigate("http://site.com/")
            yield from session.wait_until_synced()
            for value in range(12):
                hb.mutate_document(
                    lambda doc, value=value: setattr(
                        doc.get_elements_by_tag_name("p")[0],
                        "inner_html",
                        "state-%d" % value,
                    )
                )
                yield sim.timeout(0.11)
            yield from session.wait_until_synced()

        run(sim, scenario())
        assert pb.page.document.body.text_content.endswith("state-11")
