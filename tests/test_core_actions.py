"""Tests for user-action records and stable element references."""

import pytest

from repro.core import (
    ActionError,
    ClickAction,
    FormFillAction,
    MouseMoveAction,
    ScrollAction,
    SubmitAction,
    UserAction,
    decode_actions,
    element_reference,
    encode_actions,
    resolve_reference,
)
from repro.html import parse_document


class TestActionSerialization:
    def test_round_trip_all_kinds(self):
        actions = [
            ClickAction("a:3"),
            FormFillAction("form:0", {"name": "Alice", "city": "NY"}),
            SubmitAction("form:1", {"q": "laptop"}),
            MouseMoveAction(120, 340),
            ScrollAction(512),
        ]
        decoded = decode_actions(encode_actions(actions))
        assert decoded == actions

    def test_decode_empty(self):
        assert decode_actions("") == []
        assert decode_actions("[]") == []

    def test_decode_bad_json(self):
        with pytest.raises(ActionError):
            decode_actions("{not json")

    def test_decode_non_list(self):
        with pytest.raises(ActionError):
            decode_actions('{"kind": "click"}')

    def test_unknown_kind_rejected(self):
        with pytest.raises(ActionError):
            UserAction.from_dict({"kind": "teleport"})

    def test_click_requires_ref(self):
        with pytest.raises(ActionError):
            ClickAction("")

    def test_formfill_requires_mapping(self):
        with pytest.raises(ActionError):
            UserAction.from_dict({"kind": "formfill", "form_ref": "form:0", "fields": "nope"})

    def test_mousemove_coerces_ints(self):
        action = MouseMoveAction("10", 20.0)
        assert action.x == 10 and action.y == 20

    def test_equality_and_hash(self):
        a = ClickAction("a:1")
        b = ClickAction("a:1")
        assert a == b
        assert len({a, b}) == 1
        assert a != ClickAction("a:2")


DOC = parse_document(
    "<html><head></head><body>"
    "<form id='f1'><input name='x'></form>"
    "<a href='/one'>one</a>"
    "<form id='f2'><input name='y'><input name='z'></form>"
    "<a href='/two'>two</a>"
    "</body></html>"
)


class TestElementReferences:
    def test_reference_by_document_order(self):
        forms = DOC.get_elements_by_tag_name("form")
        assert element_reference(DOC, forms[0]) == "form:0"
        assert element_reference(DOC, forms[1]) == "form:1"
        inputs = DOC.get_elements_by_tag_name("input")
        assert element_reference(DOC, inputs[2]) == "input:2"

    def test_resolve_round_trip(self):
        for element in DOC.descendant_elements():
            if element.tag in ("form", "a", "input"):
                ref = element_reference(DOC, element)
                assert resolve_reference(DOC, ref) is element

    def test_resolve_out_of_range(self):
        with pytest.raises(ActionError):
            resolve_reference(DOC, "form:9")

    def test_resolve_bad_format(self):
        for bad in ("form", "form:x", ":0"):
            with pytest.raises(ActionError):
                resolve_reference(DOC, bad)

    def test_reference_of_detached_element(self):
        from repro.html import Element

        with pytest.raises(ActionError):
            element_reference(DOC, Element("form"))

    def test_references_stable_across_copies(self):
        """The participant's copy resolves references to the 'same'
        elements as the host document — the invariant that makes
        tag:index references work at all."""
        copy = DOC.clone()
        for element in DOC.descendant_elements():
            if element.tag not in ("form", "a", "input"):
                continue
            ref = element_reference(DOC, element)
            mirrored = resolve_reference(copy, ref)
            assert mirrored.tag == element.tag
            assert mirrored.attributes == element.attributes
