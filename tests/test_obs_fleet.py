"""The fleet telemetry plane end to end: wire invariant, conservation,
fleet view, SLO wiring, stragglers, and the eviction-gauge satellite.

The two load-bearing properties:

* **byte-identity when disabled** — a session without ``telemetry=``
  (the default) moves exactly the same uplink bytes as one explicitly
  disabled, and no poll body ever carries a ``telemetry`` key;
* **conservation** — across a branching-4 depth-2 relay tree with an
  injected relay death, the host's fleet totals plus every reporter's
  unreported remainder equal the sum of per-member local ledgers, and
  edit-driven counters drain to exact equality after quiescing.
"""

import pytest

from repro.browser import Browser
from repro.core import CoBrowsingSession
from repro.core.transport import TRANSPORT_ENV
from repro.http import HttpRequest
from repro.net import LAN_PROFILE, Host, Network
from repro.obs import (
    BREACH,
    EventBus,
    FleetView,
    FlightRecorder,
    HealthMonitor,
    MemberDelta,
    MetricsRegistry,
    fleet_rules,
    render_fleet_view,
)
from repro.sim import Simulator
from repro.webserver import OriginServer, StaticSite

PAGE = (
    "<html><head><title>Fleet test</title></head><body>"
    + "".join("<p id='p%d'>paragraph %d body</p>" % (i, i) for i in range(8))
    + "</body></html>"
)


def build_world(participants=2, **session_kwargs):
    sim = Simulator()
    network = Network(sim)
    site = StaticSite("site.com")
    site.add_page("/", PAGE)
    OriginServer(network, "site.com", site.handle)
    host_pc = Host(network, "host-pc", LAN_PROFILE, segment="campus")
    host_browser = Browser(host_pc, name="bob")
    session_kwargs.setdefault("poll_interval", 0.2)
    session = CoBrowsingSession(host_browser, **session_kwargs)
    browsers = []
    for index in range(participants):
        pc = Host(network, "part-pc-%d" % index, LAN_PROFILE, segment="campus")
        browsers.append(Browser(pc, name="p%d" % index))
    return sim, session, browsers


def run(sim, generator, limit=1e9):
    return sim.run_until_complete(sim.process(generator), limit=limit)


def edit_paragraph(browser, index, text):
    from repro.html import Text

    def mutate(document):
        target = document.get_element_by_id("p%d" % index)
        target.remove_all_children()
        target.append_child(Text(text))

    browser.mutate_document(mutate)


#: Captured once so stacked monkeypatches never wrap the wrapper.
_REAL_TO_BYTES = HttpRequest.to_bytes


def counting_requests(monkeypatch, ledger):
    """Wrap HttpRequest.to_bytes so every uplink request is tallied."""

    def wrapped(self):
        data = _REAL_TO_BYTES(self)
        ledger["bytes"] += len(data)
        ledger["telemetry_requests"] += int(b'"telemetry"' in data)
        return data

    monkeypatch.setattr(HttpRequest, "to_bytes", wrapped)


class TestWireInvariant:
    def drive(self, session_kwargs, monkeypatch):
        ledger = {"bytes": 0, "telemetry_requests": 0}
        counting_requests(monkeypatch, ledger)
        sim, session, (alice,) = build_world(participants=1, **session_kwargs)

        def scenario():
            snippet = yield from session.join(alice)
            yield from session.host_navigate("http://site.com/")
            yield from session.wait_until_synced()
            for index in range(3):
                edit_paragraph(session.host_browser, index, "edit %d" % index)
                yield from session.wait_until_synced(timeout=10.0)
            yield sim.timeout(2.0)
            return snippet

        snippet = run(sim, scenario())
        client = snippet.browser.client
        downlink = (
            client.requests_sent,
            client.bytes_received,
            session.agent.stats["full_bytes_sent"],
            session.agent.stats["delta_bytes_sent"],
        )
        return ledger, downlink, session

    def test_disabled_is_byte_identical_and_key_free(self, monkeypatch):
        monkeypatch.delenv(TRANSPORT_ENV, raising=False)
        seed_ledger, seed_down, _ = self.drive({}, monkeypatch)
        off_ledger, off_down, session = self.drive({"telemetry": None}, monkeypatch)
        # The default construction never even learns the kwarg exists.
        assert session.fleet is None
        assert seed_ledger["telemetry_requests"] == 0
        assert off_ledger["telemetry_requests"] == 0
        assert off_ledger["bytes"] == seed_ledger["bytes"]
        assert off_down == seed_down

    def test_enabled_rides_uplink_only(self, monkeypatch):
        monkeypatch.delenv(TRANSPORT_ENV, raising=False)
        _off_ledger, off_down, _ = self.drive({}, monkeypatch)
        on_ledger, on_down, session = self.drive({"telemetry": True}, monkeypatch)
        assert session.fleet is not None
        assert on_ledger["telemetry_requests"] > 0
        # Telemetry is pure piggyback: the downlink (responses, content
        # bytes served) is untouched by enabling it.
        assert on_down == off_down
        assert session.fleet.totals().counters["polls"] > 0

    def test_every_blob_honours_the_byte_cap(self, monkeypatch):
        monkeypatch.delenv(TRANSPORT_ENV, raising=False)
        view = FleetView(byte_cap=256)
        _ledger, _down, session = self.drive({"telemetry": view}, monkeypatch)
        assert session.fleet is view
        assert view.digests_ingested > 0
        assert view.max_blob_bytes <= 256


def fanout_world(participants=20, **session_kwargs):
    session_kwargs.setdefault("telemetry", True)
    sim, session, browsers = build_world(participants=participants, **session_kwargs)
    session.fanout_tree(branching=4)
    return sim, session, browsers


def sum_counters(deltas):
    totals = {}
    for delta in deltas:
        for key, value in delta.counters.items():
            totals[key] = totals.get(key, 0) + value
    return totals


class TestConservation:
    def drive_tree(self, fail=True):
        sim, session, browsers = fanout_world(participants=20)
        reporters = []

        def scenario():
            for browser in browsers:
                relay = yield from session.join(browser)
                reporters.append(relay.telemetry)
            yield from session.host_navigate("http://site.com/")
            yield from session.wait_until_synced(timeout=30.0)
            for index in range(4):
                edit_paragraph(session.host_browser, index, "round %d" % index)
                yield from session.wait_until_synced(timeout=30.0)
            # Quiesce long enough for two flush-interval hops (member ->
            # relay -> host) plus poll cadence to drain every digest up.
            yield sim.timeout(3.0 * session.fleet.flush_interval)
            if fail:
                victim = next(
                    rid for rid, r in session.relays.items() if r.participants
                )
                session.fail_relay(victim)
                yield sim.timeout(12.0)  # orphans re-attach
                edit_paragraph(session.host_browser, 5, "after death")
                yield from session.wait_until_synced(timeout=30.0)
                yield sim.timeout(3.0)  # quiesce again

        run(sim, scenario())
        return session, reporters

    def test_tree_conserves_without_failures(self):
        session, reporters = self.drive_tree(fail=False)
        fleet = session.fleet
        assert fleet.member_count == 20
        host = fleet.totals().counters
        unreported = sum_counters(
            r.unreported().totals() for r in reporters
        )
        locals_sum = sum_counters(r.local for r in reporters)
        for key in MemberDelta.COUNTERS:
            assert host.get(key, 0) + unreported.get(key, 0) == locals_sum.get(
                key, 0
            ), key
        # After quiescing, every edit-driven record has drained upstream.
        for key in ("content_updates", "delta_updates", "resyncs"):
            assert host.get(key, 0) == locals_sum.get(key, 0), key

    def test_tree_conserves_across_relay_death(self):
        session, reporters = self.drive_tree(fail=True)
        fleet = session.fleet
        host = fleet.totals().counters
        unreported = sum_counters(r.unreported().totals() for r in reporters)
        locals_sum = sum_counters(r.local for r in reporters)
        # The instant identity holds exactly even though a relay died
        # with unflushed records: they are still in its reporter's
        # pending set, counted as unreported.
        for key in MemberDelta.COUNTERS:
            assert host.get(key, 0) + unreported.get(key, 0) == locals_sum.get(
                key, 0
            ), key
        # Survivors kept reporting after the death: the host saw applies
        # from the post-death edit round too.
        assert host.get("content_updates", 0) > 0
        assert fleet.staleness_p95() > 0

    def test_tiers_partition_the_fleet(self):
        session, _reporters = self.drive_tree(fail=False)
        fleet = session.fleet
        tiers = fleet.per_tier()
        assert set(tiers) == {1, 2}  # branching-4, 20 members: 4 + 16
        tier_polls = sum(t.counters.get("polls", 0) for t in tiers.values())
        assert tier_polls == fleet.totals().counters["polls"]


class TestHealthAndRecorderWiring:
    def drive_monitored(self):
        events = EventBus()
        sim, session, browsers = build_world(
            participants=3, telemetry=True, events=events
        )
        recorder = FlightRecorder(
            events, registry=session.metrics, fleet=session.fleet
        )
        monitor = HealthMonitor(session, recorder=recorder)

        def scenario():
            for browser in browsers:
                yield from session.join(browser)
            yield from session.host_navigate("http://site.com/")
            yield from session.wait_until_synced()
            sim.process(monitor.run())
            for index in range(3):
                edit_paragraph(session.host_browser, index, "tick %d" % index)
                yield from session.wait_until_synced(timeout=10.0)
                yield sim.timeout(1.0)
            monitor.sample()
            monitor.check()

        run(sim, scenario())
        return session, monitor, recorder

    def test_fleet_rules_auto_append_and_grade(self):
        session, monitor, _recorder = self.drive_monitored()
        assert session.fleet is not None
        rules = {rule.name for rule in monitor.rules}
        assert "client_staleness_p95" in rules
        assert "telemetry_overhead_ratio" in rules
        verdicts = {
            (v.rule, v.subject): v for v in monitor.last_report.verdicts
        }
        # Every reporting member got a client-measured staleness verdict.
        member_subjects = [
            subject for rule, subject in verdicts if rule == "client_staleness_p95"
        ]
        assert sorted(member_subjects) == ["p0", "p1", "p2"]
        assert ("telemetry_overhead_ratio", "session") in verdicts

    def test_breach_lands_fleet_snapshot_in_the_black_box(self):
        session, monitor, recorder = self.drive_monitored()
        # Force a breach on the client-measured rule: thresholds below
        # any observed staleness.
        monitor.rules = fleet_rules(
            staleness_warn_ms=0.0, staleness_breach_ms=0.0
        )
        report = monitor.check()
        assert report.level == BREACH
        assert recorder.dumps
        box = recorder.last_dump
        assert "fleet" in box
        assert box["fleet"]["members_reporting"] == 3
        assert box["fleet"]["fleet"]["counters"]["polls"] > 0

    def test_telemetry_free_session_gets_no_fleet_rules(self):
        sim, session, _browsers = build_world(participants=1)
        monitor = HealthMonitor(session)
        assert session.fleet is None
        assert not any(
            rule.name == "client_staleness_p95" for rule in monitor.rules
        )


class TestStragglerDetection:
    def view_with(self, p95s):
        view = FleetView()
        for member_id, staleness in p95s.items():
            delta = MemberDelta(member_id)
            delta.bump("content_updates")
            delta.staleness.record(staleness)
            blob = {"v": 1, "members": [delta.to_dict()]}
            view.ingest(blob)
        return view

    def test_lagging_outlier_is_flagged(self):
        view = self.view_with(
            {"a": 100, "b": 110, "c": 105, "d": 95, "e": 102, "slow": 8000}
        )
        flagged = view.stragglers()
        assert [row["member"] for row in flagged] == ["slow"]
        assert flagged[0]["score"] >= view.straggler_threshold

    def test_fresh_outlier_is_not_a_straggler(self):
        view = self.view_with(
            {"a": 1000, "b": 1010, "c": 1005, "d": 995, "fast": 1}
        )
        assert view.stragglers() == []

    def test_uniform_fleet_has_no_stragglers(self):
        view = self.view_with({"m%d" % i: 100 for i in range(6)})
        assert view.stragglers() == []

    def test_small_populations_are_never_judged(self):
        view = self.view_with({"a": 1, "b": 1, "slow": 99999})
        assert view.stragglers() == []

    def test_mad_degeneracy_falls_back_to_mean_deviation(self):
        # Most members identical: MAD is 0, but the mean absolute
        # deviation still separates the outlier.
        view = self.view_with(
            {"a": 100, "b": 100, "c": 100, "d": 100, "slow": 9000}
        )
        flagged = view.stragglers()
        assert [row["member"] for row in flagged] == ["slow"]

    def test_straggler_marked_in_rendering(self):
        view = self.view_with(
            {"a": 100, "b": 110, "c": 105, "d": 95, "slow": 8000}
        )
        text = render_fleet_view(view)
        assert "<- straggler" in text
        assert "stragglers: slow" in text


class TestFleetViewExport:
    def test_to_dict_shape(self):
        view = FleetView(byte_cap=512, tier_of=lambda member: 1)
        delta = MemberDelta("m1")
        delta.bump("polls", 3)
        delta.bump("bytes_seen", 900)
        delta.staleness.record(120)
        view.ingest({"v": 1, "members": [delta.to_dict()]}, t=4.5)
        doc = view.to_dict()
        assert doc["byte_cap"] == 512
        assert doc["members_reporting"] == 1
        assert doc["members"]["m1"]["tier"] == 1
        assert doc["members"]["m1"]["counters"]["polls"] == 3
        assert doc["tiers"]["1"]["counters"]["polls"] == 3
        assert doc["fleet"]["counters"]["bytes_seen"] == 900
        assert doc["telemetry_overhead_ratio"] == pytest.approx(
            view.telemetry_wire_bytes / 900
        )
        assert view.last_ingest_t == 4.5

    def test_folded_records_reported_not_silent(self):
        view = FleetView()
        folded = MemberDelta("*", weight=7)
        folded.bump("polls", 70)
        view.ingest({"v": 1, "members": [folded.to_dict()]})
        assert view.folded_records == 7
        assert view.member_count == 0
        assert view.totals().counters["polls"] == 70
        assert view.to_dict()["folded_records"] == 7
        assert "(7 records folded)" in render_fleet_view(view)

    def test_malformed_blob_cannot_crash_the_host(self):
        view = FleetView()
        view.ingest("garbage")
        view.ingest({"v": 0})
        assert view.ingest_errors == 2
        assert view.digests_ingested == 0


class TestEvictionGauges:
    def test_evictions_surface_as_gauges(self):
        registry = MetricsRegistry()
        bus = EventBus(ring_size=2)
        bus.attach_registry(registry)
        for tick in range(5):
            bus.emit("poll.served", float(tick), node="relay-1")
        bus.emit("poll.served", 9.0, node="quiet")
        assert bus.evicted("relay-1") == 3
        assert bus.evicted("quiet") == 0
        assert bus.evicted() == 3
        assert registry.gauge("events_evicted", node="relay-1").value == 3

    def test_attach_after_evictions_publishes_history(self):
        bus = EventBus(ring_size=1)
        for tick in range(4):
            bus.emit("poll.served", float(tick), node="n1")
        registry = MetricsRegistry()
        bus.attach_registry(registry)
        assert registry.gauge("events_evicted", node="n1").value == 3

    def test_attach_is_idempotent(self):
        registry = MetricsRegistry()
        bus = EventBus(ring_size=1)
        bus.attach_registry(registry)
        bus.attach_registry(registry)  # second call is a no-op
        bus.emit("poll.served", 0.0, node="n1")
        bus.emit("poll.served", 1.0, node="n1")
        assert registry.gauge("events_evicted", node="n1").value == 1

    def test_session_attaches_its_bus(self):
        events = EventBus(ring_size=4)
        _sim, session, _browsers = build_world(participants=1, events=events)
        assert events._registry is session.metrics
