"""Tests for the synthetic origin servers: pagegen, Table-1 sites, maps, shop."""

import pytest

from repro.browser import Browser
from repro.html import parse_document
from repro.net import LAN_PROFILE, Host, Network
from repro.sim import Simulator
from repro.webserver import (
    MAP_HOST,
    MapPageDriver,
    MapService,
    SHOP_HOST,
    ShopService,
    TABLE1_SITES,
    deploy_table1_sites,
    generate_site,
    generate_table1_site,
)


def build_world():
    sim = Simulator()
    network = Network(sim)
    user = Host(network, "user-pc", LAN_PROFILE, segment="campus")
    return sim, network, user


def run(sim, generator):
    return sim.run_until_complete(sim.process(generator))


class TestPageGenerator:
    def test_html_size_near_target(self):
        site = generate_site("test.com", 50.0)
        assert 0.95 * 50 * 1024 <= site.html_size <= 1.15 * 50 * 1024

    def test_small_page(self):
        site = generate_site("tiny.com", 6.8)
        assert 0.9 * 6.8 * 1024 <= site.html_size <= 1.3 * 6.8 * 1024

    def test_deterministic(self):
        first = generate_site("stable.com", 30.0)
        second = generate_site("stable.com", 30.0)
        assert first.html == second.html
        assert first.objects == second.objects

    def test_different_hosts_differ(self):
        assert generate_site("a.com", 30.0).html != generate_site("b.com", 30.0).html

    def test_generated_html_parses_with_objects_discoverable(self):
        from repro.net import parse_url

        site = generate_site("parse.com", 40.0)
        document = parse_document(site.html)
        urls = Browser.discover_object_urls(document, parse_url("http://parse.com/"))
        referenced_paths = {u[len("http://parse.com"):] for u in urls}
        assert referenced_paths == set(site.object_paths)

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            generate_site("x.com", 0)


class TestTable1Sites:
    def test_twenty_sites_defined(self):
        assert len(TABLE1_SITES) == 20
        assert TABLE1_SITES[0].host == "yahoo.com"
        assert TABLE1_SITES[12].host == "amazon.com"
        assert TABLE1_SITES[12].page_kb == 228.5

    def test_generation_matches_spec_size(self):
        spec = TABLE1_SITES[1]  # google.com, 6.8 KB
        site = generate_table1_site(spec)
        assert abs(site.html_size / 1024.0 - spec.page_kb) < spec.page_kb * 0.3

    def test_deploy_and_browse_one_site(self):
        sim, network, user = build_world()
        deploy_table1_sites(network)
        browser = Browser(user)

        def scenario():
            return (yield from browser.navigate("http://google.com/"))

        page = run(sim, scenario())
        assert "google.com" in page.document.title
        assert len(page.objects) > 0

    def test_memoization_returns_same_object(self):
        spec = TABLE1_SITES[3]
        assert generate_table1_site(spec) is generate_table1_site(spec)


class TestMapService:
    def test_map_page_loads_with_tiles(self):
        sim, network, user = build_world()
        MapService(network)
        browser = Browser(user)

        def scenario():
            return (yield from browser.navigate("http://%s/" % MAP_HOST))

        page = run(sim, scenario())
        canvas = page.document.get_element_by_id("map-canvas")
        assert canvas is not None
        assert len(canvas.get_elements_by_tag_name("img")) == 9

    def test_search_recenters_viewport(self):
        sim, network, user = build_world()
        MapService(network)
        browser = Browser(user)

        def scenario():
            yield from browser.navigate("http://%s/" % MAP_HOST)
            driver = MapPageDriver(browser)
            yield from driver.search("653 5th Ave, New York")
            return driver.viewport

        zoom, x, y = run(sim, scenario())
        assert (x, y) == (1205, 1539)
        assert zoom == 12

    def test_pan_updates_tiles_and_fires_mutation(self):
        sim, network, user = build_world()
        MapService(network)
        browser = Browser(user)
        from repro.browser import TOPIC_DOCUMENT_CHANGED

        mutations = []
        browser.observers.add_observer(TOPIC_DOCUMENT_CHANGED, lambda t, p: mutations.append(p))

        def scenario():
            yield from browser.navigate("http://%s/" % MAP_HOST)
            driver = MapPageDriver(browser)
            yield from driver.pan(1, 0)
            return driver.viewport

        _zoom, x, _y = run(sim, scenario())
        assert x == 1201
        assert len(mutations) == 1
        tile = browser.page.document.get_element_by_id("tile-0-0")
        assert tile.get_attribute("src") == "/tiles/12/1201/1530.png"

    def test_zoom_scales_coordinates(self):
        sim, network, user = build_world()
        MapService(network)
        browser = Browser(user)

        def scenario():
            yield from browser.navigate("http://%s/" % MAP_HOST)
            driver = MapPageDriver(browser)
            yield from driver.zoom(1)
            return driver.viewport

        zoom, x, _y = run(sim, scenario())
        assert zoom == 13
        assert x == 2400

    def test_tiles_cached_not_refetched(self):
        sim, network, user = build_world()
        service = MapService(network)
        browser = Browser(user)

        def scenario():
            yield from browser.navigate("http://%s/" % MAP_HOST)
            driver = MapPageDriver(browser)
            yield from driver.pan(1, 0)
            first = service.tile_requests
            yield from driver.pan(-1, 0)  # back to tiles we already have
            return first, service.tile_requests

        first, second = run(sim, scenario())
        # Panning back re-uses cached tiles: only the pan-forward column
        # was fetched after the initial load.
        assert second == first

    def test_street_view_embeds_flash(self):
        sim, network, user = build_world()
        MapService(network)
        browser = Browser(user)

        def scenario():
            yield from browser.navigate("http://%s/" % MAP_HOST)
            driver = MapPageDriver(browser)
            yield from driver.open_street_view()

        run(sim, scenario())
        embed = browser.page.document.get_element_by_id("street-view")
        assert embed is not None
        assert embed.get_attribute("type") == "application/x-shockwave-flash"


class TestShop:
    def test_home_and_search(self):
        sim, network, user = build_world()
        shop = ShopService(network)
        browser = Browser(user)

        def scenario():
            yield from browser.navigate("http://%s/" % SHOP_HOST)
            form = browser.page.document.get_element_by_id("searchform")
            page = yield from browser.submit_form(form, {"q": "MacBook Air"})
            return page

        page = run(sim, scenario())
        assert "results for 'MacBook Air'" in page.document.text_content
        results = [
            el
            for el in page.document.descendant_elements()
            if el.tag == "li" and el.get_attribute("class") == "result"
        ]
        assert len(results) == len(shop.search_catalog("MacBook Air")) >= 3

    def test_session_cookie_assigned_once(self):
        sim, network, user = build_world()
        shop = ShopService(network)
        browser = Browser(user)

        def scenario():
            yield from browser.navigate("http://%s/" % SHOP_HOST)
            yield from browser.navigate("http://%s/search?q=camera" % SHOP_HOST)

        run(sim, scenario())
        assert shop.session_count() == 1
        assert browser.cookie_jar.get(SHOP_HOST, "shopsession") is not None

    def test_cart_is_session_protected(self):
        sim, network, user = build_world()
        ShopService(network)
        buyer = Browser(user)
        stranger_host = Host(user.network, "stranger-pc", LAN_PROFILE, segment="campus")
        stranger = Browser(stranger_host)

        def scenario():
            yield from buyer.navigate("http://%s/item/mba-13-128" % SHOP_HOST)
            form = buyer.page.document.get_element_by_id("addform")
            yield from buyer.submit_form(form)
            # The buyer sees the item; a stranger hitting the same URL
            # gets an empty cart — the paper's session-protection point.
            stranger_page = yield from stranger.navigate("http://%s/cart" % SHOP_HOST)
            return buyer.page, stranger_page

        buyer_page, stranger_page = run(sim, scenario())
        assert "MacBook Air" in buyer_page.document.text_content
        assert stranger_page.document.get_element_by_id("cart-empty") is not None

    def test_full_checkout_flow(self):
        sim, network, user = build_world()
        shop = ShopService(network)
        browser = Browser(user)
        address = {
            "full_name": "Alice Smith",
            "street": "653 5th Ave",
            "city": "New York",
            "state": "NY",
            "zip_code": "10022",
        }

        def scenario():
            yield from browser.navigate("http://%s/item/mba-13-64" % SHOP_HOST)
            add_form = browser.page.document.get_element_by_id("addform")
            yield from browser.submit_form(add_form)  # redirects to /cart
            assert browser.page.document.get_element_by_id("cart-items") is not None
            yield from browser.navigate("http://%s/checkout" % SHOP_HOST)
            address_form = browser.page.document.get_element_by_id("addressform")
            yield from browser.submit_form(address_form, address)
            confirm = browser.page.document.get_element_by_id("confirmform")
            page = yield from browser.submit_form(confirm)
            return page

        page = run(sim, scenario())
        assert page.document.get_element_by_id("order-complete") is not None
        assert shop.order_count() == 1

    def test_checkout_requires_address_fields(self):
        sim, network, user = build_world()
        ShopService(network)
        browser = Browser(user)

        def scenario():
            yield from browser.navigate("http://%s/item/mba-13-64" % SHOP_HOST)
            add_form = browser.page.document.get_element_by_id("addform")
            yield from browser.submit_form(add_form)
            yield from browser.navigate("http://%s/checkout" % SHOP_HOST)
            address_form = browser.page.document.get_element_by_id("addressform")
            page = yield from browser.submit_form(address_form, {"full_name": "Bob"})
            return page

        page = run(sim, scenario())
        assert page.document.get_element_by_id("address-error") is not None

    def test_checkout_with_empty_cart(self):
        sim, network, user = build_world()
        ShopService(network)
        browser = Browser(user)

        def scenario():
            return (yield from browser.navigate("http://%s/checkout" % SHOP_HOST))

        page = run(sim, scenario())
        assert page.document.get_element_by_id("cart-empty") is not None

    def test_catalog_contains_scenario_products(self):
        sim, network, _user = build_world()
        shop = ShopService(network)
        airs = shop.search_catalog("macbook air")
        assert len(airs) >= 2  # Bob's pick and Alice's different pick
