"""Property-based test: batched serve output == legacy, byte for byte.

For random edit sequences and member mixes, the broadcast-plan pipeline
(shared templates + per-member userActions splice) must emit exactly
the bytes the legacy per-member str pipeline emits — including the
full-vs-delta decision, fallback behavior, and HMAC-enabled worlds.
"""

import string

from hypothesis import given, settings, strategies as st

from repro.browser import Browser
from repro.core import FormFillAction, MouseMoveAction, RCBAgent
from repro.html import Text
from repro.net import LAN_PROFILE, Host, Network
from repro.sim import Simulator
from repro.webserver import OriginServer, StaticSite

PAGE = (
    "<html><head><title>Prop</title></head>"
    "<body><h2 id='headline'>start</h2>"
    "<form id='f'><input name='q' value=''></form>"
    + "".join("<p id='p%d'>seed %d</p>" % (i, i) for i in range(6))
    + "</body></html>"
)


def build_agent(batched, secret=None):
    sim = Simulator()
    network = Network(sim)
    site = StaticSite("site.com")
    site.add_page("/", PAGE)
    OriginServer(network, "site.com", site.handle)
    host_pc = Host(network, "host-pc", LAN_PROFILE, segment="campus")
    browser = Browser(host_pc, name="host")
    agent = RCBAgent(enable_batched_serve=batched, secret=secret)
    agent.install(browser)
    sim.run_until_complete(sim.process(browser.navigate("http://site.com/")))
    return browser, agent


# One edit = (paragraph index, replacement text).
edits = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=5),
        st.text(alphabet=string.ascii_letters + string.digits + " .,!-", max_size=30),
    ),
    min_size=1,
    max_size=4,
)

# One member = (how many ticks behind its ack is, action payload kind).
members = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=5),
        st.sampled_from(["none", "shared", "own", "both"]),
    ),
    min_size=1,
    max_size=6,
)


def apply_edit(browser, index, text):
    def mutate(document):
        target = document.get_element_by_id("p%d" % index)
        target.remove_all_children()
        target.append_child(Text(text if text else "empty"))

    browser.mutate_document(mutate)


@settings(max_examples=25, deadline=None)
@given(edit_seq=edits, member_mix=members, use_secret=st.booleans())
def test_batched_serve_is_byte_identical(edit_seq, member_mix, use_secret):
    secret = "prop-secret" if use_secret else None
    browser_l, agent_l = build_agent(False, secret=secret)
    browser_b, agent_b = build_agent(True, secret=secret)
    assert agent_l.doc_time == agent_b.doc_time

    # Run the edit sequence tick by tick; after each tick a couple of
    # members poll, so intermediate states enter the snapshot ring at
    # the same doc-times in both worlds.
    history = [agent_l.doc_time]
    for tick, (index, text) in enumerate(edit_seq):
        agent_l._serve_body("warm", 0, [])
        agent_b._serve_body("warm", 0, [])
        apply_edit(browser_l, index, text)
        apply_edit(browser_b, index, text)
        assert agent_l.doc_time == agent_b.doc_time
        history.append(agent_l.doc_time)

    shared_l = [MouseMoveAction(11, 22)]
    shared_b = [MouseMoveAction(11, 22)]
    for slot, (behind, action_kind) in enumerate(member_mix):
        member = "m%d" % slot
        their_time = 0 if behind >= len(history) else history[-1 - behind]
        if action_kind == "none":
            actions_l, actions_b = [], []
        elif action_kind == "shared":
            actions_l, actions_b = shared_l, shared_b
        elif action_kind == "own":
            actions_l = [FormFillAction("f", {"q": "member %d" % slot})]
            actions_b = [FormFillAction("f", {"q": "member %d" % slot})]
        else:
            actions_l = shared_l + [MouseMoveAction(slot, slot)]
            actions_b = shared_b + [MouseMoveAction(slot, slot)]
        body_l, delta_l = agent_l._serve_body(member, their_time, actions_l)
        body_b, delta_b = agent_b._serve_body(member, their_time, actions_b)
        response_l = agent_l._respond(body_l)
        response_b = agent_b._respond(body_b)
        assert delta_l == delta_b
        assert response_l.to_bytes() == response_b.to_bytes()

    # Observability parity across the whole sequence.
    for key in ("delta_fallbacks", "delta_bytes_saved"):
        assert agent_l.stats[key] == agent_b.stats[key], key
