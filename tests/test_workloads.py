"""Tests for testbeds, the Table 2 scenario, and the usability study."""

import pytest

from repro.workloads import (
    LIKERT_LEVELS,
    TABLE2_TASKS,
    TABLE3_QUESTIONS,
    TABLE4_DISTRIBUTIONS,
    ScenarioRunner,
    analyze_questionnaire,
    build_lan,
    build_wan,
    generate_questionnaire_responses,
    invert_negative_response,
    run_pair_study,
)


class TestEnvironments:
    def test_lan_testbed_shape(self):
        testbed = build_lan(participants=2)
        assert testbed.environment == "lan"
        assert len(testbed.participant_browsers) == 2
        assert testbed.host_browser.host.segment == "campus"
        assert testbed.participant_browser.host.segment == "campus"

    def test_wan_testbed_separate_homes(self):
        testbed = build_wan()
        assert testbed.host_browser.host.segment != testbed.participant_browser.host.segment
        assert testbed.host_browser.host.link.profile.up_bps == 384e3

    def test_sites_deployed(self):
        testbed = build_lan()
        assert testbed.network.lookup("www.google.com") is not None
        assert testbed.network.lookup("google.com") is not None

    def test_optional_services(self):
        testbed = build_lan(deploy_sites=False, with_map=True, with_shop=True)
        assert testbed.map_service is not None
        assert testbed.shop_service is not None
        assert testbed.network.lookup("www.google.com") is None

    def test_clear_caches(self):
        testbed = build_lan(deploy_sites=False)
        testbed.host_browser.cache.store("k", "t", b"x")
        testbed.clear_caches()
        assert len(testbed.host_browser.cache) == 0

    def test_realistic_network_model_enabled(self):
        testbed = build_lan()
        assert testbed.network.dns_enabled
        assert testbed.network.slow_start_enabled


class TestScenario:
    def test_table2_has_twenty_tasks(self):
        assert len(TABLE2_TASKS) == 20
        bob_tasks = [t for t, _d in TABLE2_TASKS if t.endswith("-B")]
        alice_tasks = [t for t, _d in TABLE2_TASKS if t.endswith("-A")]
        assert len(bob_tasks) == 10
        assert len(alice_tasks) == 10

    def test_scenario_requires_services(self):
        testbed = build_lan(deploy_sites=False)
        with pytest.raises(ValueError):
            ScenarioRunner(testbed)

    def test_full_session_completes_all_tasks(self):
        testbed = build_lan(deploy_sites=False, with_map=True, with_shop=True)
        runner = ScenarioRunner(testbed)
        results = testbed.run(
            runner.run_session(testbed.host_browser, testbed.participant_browser)
        )
        assert len(results) == 20
        assert all(task.completed for task in results), [
            (t.task_id, t.detail) for t in results if not t.completed
        ]
        assert [task.task_id for task in results] == [t for t, _d in TABLE2_TASKS]

    def test_session_leaves_shop_with_one_order(self):
        testbed = build_lan(deploy_sites=False, with_map=True, with_shop=True)
        runner = ScenarioRunner(testbed)
        testbed.run(runner.run_session(testbed.host_browser, testbed.participant_browser))
        assert testbed.shop_service.order_count() == 1
        # Only the host ever talked to the shop: one server-side session.
        assert testbed.shop_service.session_count() == 1

    def test_pair_study_runs_two_sessions(self):
        sessions = run_pair_study()
        assert len(sessions) == 2
        for session in sessions:
            assert sum(1 for t in session if t.completed) == 20


class TestQuestionnaire:
    def test_table3_pairs(self):
        assert len(TABLE3_QUESTIONS) == 16
        ids = [qid for qid, _text in TABLE3_QUESTIONS]
        for index in range(1, 9):
            assert "Q%d-P" % index in ids
            assert "Q%d-N" % index in ids

    def test_inversion(self):
        assert invert_negative_response(1) == 5
        assert invert_negative_response(3) == 3
        assert invert_negative_response(5) == 1
        with pytest.raises(ValueError):
            invert_negative_response(0)

    def test_inversion_is_involution(self):
        for score in range(1, 6):
            assert invert_negative_response(invert_negative_response(score)) == score

    def test_distributions_are_quota_exact(self):
        for question, percentages in TABLE4_DISTRIBUTIONS.items():
            assert abs(sum(percentages) - 100.0) < 1e-9, question
            for p in percentages:
                assert (p * 40 / 100) == int(p * 40 / 100), (question, p)

    def test_generated_responses_have_full_population(self):
        responses = generate_questionnaire_responses()
        assert set(responses) == set(TABLE4_DISTRIBUTIONS)
        for item_sets in responses.values():
            assert len(item_sets["P"]) == 20
            assert len(item_sets["N"]) == 20

    def test_analysis_reproduces_table4_exactly(self):
        summaries = analyze_questionnaire(generate_questionnaire_responses())
        assert len(summaries) == 8
        for summary in summaries:
            assert summary.percentages == TABLE4_DISTRIBUTIONS[summary.question]
            assert summary.median == "Agree"
            assert summary.mode == "Agree"

    def test_generation_is_seed_deterministic(self):
        first = generate_questionnaire_responses(seed=1)
        second = generate_questionnaire_responses(seed=1)
        assert first == second
        third = generate_questionnaire_responses(seed=2)
        assert first != third

    def test_different_seeds_same_marginals(self):
        for seed in (1, 2, 3):
            summaries = analyze_questionnaire(generate_questionnaire_responses(seed))
            for summary in summaries:
                assert summary.percentages == TABLE4_DISTRIBUTIONS[summary.question]

    def test_negative_items_stored_uninverted(self):
        """Raw negative-item responses should skew toward disagreement
        (subjects disagree with 'RCB is useless')."""
        responses = generate_questionnaire_responses()
        raw_negatives = [s for sets in responses.values() for s in sets["N"]]
        assert sum(1 for s in raw_negatives if s <= 2) > sum(
            1 for s in raw_negatives if s >= 4
        )

    def test_likert_levels(self):
        assert len(LIKERT_LEVELS) == 5
        assert LIKERT_LEVELS[3] == "Agree"
