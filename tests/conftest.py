"""Shared test configuration.

The tier-1 suite runs in a transport matrix: setting ``RCB_TRANSPORT``
to ``poll``, ``longpoll`` or ``push`` makes every session constructed
without an explicit ``transport=`` argument default to that mode (see
``repro.core.transport.default_transport_mode``).  CI runs the suite
once per mode; locally the variable is simply unset and the suite runs
in the seed's plain-polling mode.
"""

import os

import pytest

from repro.core.transport import TRANSPORT_ENV, TRANSPORT_MODES


@pytest.fixture(scope="session", autouse=True)
def forced_transport():
    """Validate (and expose) the transport mode forced on this run.

    A typo'd mode should kill the matrix job immediately rather than
    silently falling back — ``default_transport_mode`` raises at agent
    construction, but that surfaces as hundreds of confusing per-test
    errors; failing here yields one clear message.

    Returns the forced mode, or None when the suite runs with session
    defaults.  Tests that depend on interval-polling semantics pin
    ``transport="poll"`` explicitly instead of consulting this fixture,
    so they hold under every matrix leg.
    """
    forced = os.environ.get(TRANSPORT_ENV) or None
    if forced is not None and forced not in TRANSPORT_MODES:
        raise pytest.UsageError(
            "%s=%r is not a transport mode (choose from %s)"
            % (TRANSPORT_ENV, forced, ", ".join(TRANSPORT_MODES))
        )
    return forced
