"""Unit tests for the browser cache and observer service."""

import pytest

from repro.browser import BrowserCache, CacheMiss, ObserverService


class TestBrowserCache:
    def test_store_and_lookup(self):
        cache = BrowserCache()
        cache.store("http://a.com/x.png", "image/png", b"data", now=1.0)
        entry = cache.lookup("http://a.com/x.png")
        assert entry.data == b"data"
        assert entry.content_type == "image/png"
        assert entry.stored_at == 1.0

    def test_miss_returns_none_and_counts(self):
        cache = BrowserCache()
        assert cache.lookup("http://a.com/missing") is None
        assert cache.miss_count == 1

    def test_hit_counter_and_entry_hits(self):
        cache = BrowserCache()
        cache.store("k", "text/css", b"x")
        cache.lookup("k")
        cache.lookup("k")
        assert cache.hit_count == 2
        assert cache.peek("k").hits == 2

    def test_store_replaces_existing(self):
        cache = BrowserCache()
        cache.store("k", "text/css", b"one")
        cache.store("k", "text/css", b"twoo")
        assert cache.lookup("k").data == b"twoo"
        assert cache.current_bytes == 4
        assert len(cache) == 1

    def test_lru_eviction_order(self):
        cache = BrowserCache(max_bytes=30)
        cache.store("a", "t", b"0" * 10)
        cache.store("b", "t", b"0" * 10)
        cache.store("c", "t", b"0" * 10)
        cache.lookup("a")  # a is now most recently used
        cache.store("d", "t", b"0" * 10)  # evicts b
        assert "a" in cache
        assert "b" not in cache
        assert cache.evictions == 1

    def test_size_bound_respected(self):
        cache = BrowserCache(max_bytes=100)
        for index in range(50):
            cache.store("k%d" % index, "t", b"0" * 30)
        assert cache.current_bytes <= 100

    def test_oversized_object_not_cached(self):
        cache = BrowserCache(max_bytes=10)
        cache.store("big", "t", b"0" * 100)
        assert "big" not in cache
        assert cache.current_bytes == 0

    def test_peek_does_not_touch_lru(self):
        cache = BrowserCache(max_bytes=20)
        cache.store("a", "t", b"0" * 10)
        cache.store("b", "t", b"0" * 10)
        cache.peek("a")
        cache.store("c", "t", b"0" * 10)  # evicts a (peek didn't refresh it)
        assert "a" not in cache

    def test_remove_and_clear(self):
        cache = BrowserCache()
        cache.store("a", "t", b"12")
        cache.remove("a")
        assert "a" not in cache
        assert cache.current_bytes == 0
        cache.store("b", "t", b"34")
        cache.clear()
        assert len(cache) == 0
        assert cache.current_bytes == 0

    def test_non_bytes_rejected(self):
        with pytest.raises(TypeError):
            BrowserCache().store("k", "t", "not bytes")

    def test_bad_max_bytes(self):
        with pytest.raises(ValueError):
            BrowserCache(max_bytes=0)


class TestCacheReadSession:
    def test_read_session_reads(self):
        cache = BrowserCache()
        cache.store("k", "image/png", b"img")
        session = cache.open_read_session()
        assert session.contains("k")
        assert session.read("k").data == b"img"

    def test_read_session_miss_raises(self):
        session = BrowserCache().open_read_session()
        with pytest.raises(CacheMiss):
            session.read("nope")

    def test_read_session_has_no_write_surface(self):
        session = BrowserCache().open_read_session()
        assert not hasattr(session, "store")
        assert not hasattr(session, "remove")
        assert not hasattr(session, "clear")


class TestObserverService:
    def test_notify_invokes_observers(self):
        service = ObserverService()
        seen = []
        service.add_observer("topic", lambda t, p: seen.append((t, p)))
        count = service.notify("topic", 42)
        assert count == 1
        assert seen == [("topic", 42)]

    def test_notify_unsubscribed_topic_is_noop(self):
        service = ObserverService()
        assert service.notify("ghost") == 0

    def test_multiple_observers_all_called(self):
        service = ObserverService()
        calls = []
        for tag in "abc":
            service.add_observer("t", lambda _t, _p, tag=tag: calls.append(tag))
        service.notify("t")
        assert calls == ["a", "b", "c"]

    def test_remove_observer(self):
        service = ObserverService()
        observer = lambda t, p: None
        service.add_observer("t", observer)
        service.remove_observer("t", observer)
        assert service.observer_count("t") == 0

    def test_remove_absent_observer_is_noop(self):
        service = ObserverService()
        service.remove_observer("t", lambda t, p: None)

    def test_non_callable_rejected(self):
        with pytest.raises(TypeError):
            ObserverService().add_observer("t", "not callable")

    def test_notifications_counter(self):
        service = ObserverService()
        service.add_observer("t", lambda t, p: None)
        service.add_observer("t", lambda t, p: None)
        service.notify("t")
        assert service.notifications_sent == 2
