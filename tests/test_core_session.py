"""End-to-end co-browsing session tests: the full RCB loop (Fig. 1)."""

import pytest

from repro.browser import Browser
from repro.core import (
    AjaxSnippet,
    CoBrowsingSession,
    MouseMoveAction,
    SessionError,
    generate_session_secret,
)
from repro.html import serialize_document
from repro.net import LAN_PROFILE, WAN_HOME_PROFILE, Host, NatGateway, Network
from repro.sim import Simulator
from repro.webserver import (
    MAP_HOST,
    MapPageDriver,
    MapService,
    OriginServer,
    ShopService,
    SHOP_HOST,
    StaticSite,
    deploy_table1_sites,
)

import random


def lan_world(participants=1):
    sim = Simulator()
    network = Network(sim)
    host_pc = Host(network, "host-pc", LAN_PROFILE, segment="campus")
    host_browser = Browser(host_pc, name="bob")
    participant_browsers = []
    for index in range(participants):
        pc = Host(network, "part-pc-%d" % index, LAN_PROFILE, segment="campus")
        participant_browsers.append(Browser(pc, name="alice-%d" % index))
    return sim, network, host_browser, participant_browsers


def make_site(network):
    site = StaticSite("demo.com")
    site.add_page(
        "/",
        "<html><head><title>Demo</title><style>p { margin: 1px; }</style></head>"
        '<body><h1 id="hello">Hello</h1><img src="/a.png">'
        '<a id="next-link" href="/two.html">two</a>'
        '<form id="f" action="/submit" method="GET"><input type="text" name="q"></form>'
        "</body></html>",
    )
    site.add_page(
        "/two.html",
        "<html><head><title>Page Two</title></head><body><p>second page</p></body></html>",
    )
    site.add_page(
        "/frames.html",
        "<html><head><title>Framed</title></head>"
        "<frameset cols='*,*'><frame src='/a.png'><frame src='/a.png'></frameset>"
        "<noframes><p>sorry</p></noframes></html>",
    )
    site.add("/a.png", "image/png", b"\x89PNG" + b"a" * 4000)

    def handler(request, client):
        if request.path == "/submit":
            from repro.http import html_response

            q = request.query_params().get("q", "")
            return html_response(
                "<html><head><title>Result</title></head>"
                "<body><p id='echo'>%s</p></body></html>" % q
            )
        return site.handle(request, client)

    return OriginServer(network, "demo.com", handler)


def run(sim, generator, limit=1e9):
    return sim.run_until_complete(sim.process(generator), limit=limit)


def assert_documents_equivalent(host_browser, participant_browser):
    """Host and participant render the same page (modulo the snippet
    script, rewritten handlers, and rewritten URLs)."""
    host_body = host_browser.page.document.body
    part_body = participant_browser.page.document.body
    assert host_body.text_content == part_body.text_content
    assert (
        host_browser.page.document.title == participant_browser.page.document.title
    )


class TestBasicSync:
    def test_participant_sees_host_page(self):
        sim, network, host_browser, (pb,) = lan_world()
        make_site(network)
        session = CoBrowsingSession(host_browser)

        def scenario():
            snippet = yield from session.join(pb)
            yield from session.host_navigate("http://demo.com/")
            yield from session.wait_until_synced()
            return snippet

        snippet = run(sim, scenario())
        assert_documents_equivalent(host_browser, pb)
        assert snippet.stats.content_updates == 1

    def test_participant_address_bar_never_changes(self):
        sim, network, host_browser, (pb,) = lan_world()
        make_site(network)
        session = CoBrowsingSession(host_browser)

        def scenario():
            yield from session.join(pb)
            yield from session.host_navigate("http://demo.com/")
            yield from session.wait_until_synced()
            yield from session.host_navigate("http://demo.com/two.html")
            yield from session.wait_until_synced()

        run(sim, scenario())
        assert pb.address_bar == session.agent.url
        assert pb.page.document.title == "Page Two"

    def test_multi_page_browsing_loop(self):
        """Steps 3-9 repeat for every page the host visits."""
        sim, network, host_browser, (pb,) = lan_world()
        make_site(network)
        deploy_table1_sites(network)
        session = CoBrowsingSession(host_browser)

        def scenario():
            snippet = yield from session.join(pb)
            for url in ("http://demo.com/", "http://google.com/", "http://apple.com/"):
                yield from session.host_navigate(url)
                yield from session.wait_until_synced()
                assert pb.page.document.title == host_browser.page.document.title
            return snippet

        snippet = run(sim, scenario())
        assert snippet.stats.content_updates == 3

    def test_dynamic_dom_change_synchronized(self):
        sim, network, host_browser, (pb,) = lan_world()
        make_site(network)
        session = CoBrowsingSession(host_browser)

        def scenario():
            yield from session.join(pb)
            yield from session.host_navigate("http://demo.com/")
            yield from session.wait_until_synced()
            host_browser.mutate_document(
                lambda doc: setattr(doc.get_element_by_id("hello"), "inner_html", "Updated!")
            )
            yield from session.wait_until_synced()

        run(sim, scenario())
        assert pb.page.document.get_element_by_id("hello").text_content == "Updated!"

    def test_frameset_page_synchronized(self):
        sim, network, host_browser, (pb,) = lan_world()
        make_site(network)
        session = CoBrowsingSession(host_browser)

        def scenario():
            yield from session.join(pb)
            yield from session.host_navigate("http://demo.com/frames.html")
            yield from session.wait_until_synced()
            # Then back to a body page: the frameset must be removed.
            yield from session.host_navigate("http://demo.com/")
            yield from session.wait_until_synced()

        run(sim, scenario())
        assert pb.page.document.frameset is None
        assert pb.page.document.body is not None

    def test_frameset_replaces_body(self):
        sim, network, host_browser, (pb,) = lan_world()
        make_site(network)
        session = CoBrowsingSession(host_browser)

        def scenario():
            yield from session.join(pb)
            yield from session.host_navigate("http://demo.com/")
            yield from session.wait_until_synced()
            yield from session.host_navigate("http://demo.com/frames.html")
            yield from session.wait_until_synced()

        run(sim, scenario())
        assert pb.page.document.body is None
        assert pb.page.document.frameset is not None

    def test_snippet_survives_every_update(self):
        sim, network, host_browser, (pb,) = lan_world()
        make_site(network)
        session = CoBrowsingSession(host_browser)

        def scenario():
            yield from session.join(pb)
            for url in ("http://demo.com/", "http://demo.com/two.html", "http://demo.com/"):
                yield from session.host_navigate(url)
                yield from session.wait_until_synced()

        run(sim, scenario())
        script = pb.page.document.get_element_by_id("ajax-snippet")
        assert script is not None
        assert script.parent.tag == "head"

    def test_ie_participant_syncs_identically(self):
        sim, network, host_browser, browsers = lan_world(participants=2)
        make_site(network)
        session = CoBrowsingSession(host_browser)

        def scenario():
            yield from session.join(browsers[0], browser_type="firefox")
            yield from session.join(browsers[1], browser_type="ie")
            yield from session.host_navigate("http://demo.com/")
            yield from session.wait_until_synced()

        run(sim, scenario())
        firefox_doc = serialize_document(browsers[0].page.document)
        ie_doc = serialize_document(browsers[1].page.document)
        assert firefox_doc == ie_doc


class TestParticipantActions:
    def build(self):
        sim, network, host_browser, (pb,) = lan_world()
        make_site(network)
        session = CoBrowsingSession(host_browser)
        return sim, network, host_browser, pb, session

    def test_click_synchronizes_navigation(self):
        sim, _network, host_browser, pb, session = self.build()

        def scenario():
            snippet = yield from session.join(pb)
            yield from session.host_navigate("http://demo.com/")
            yield from session.wait_until_synced()
            anchor = pb.page.document.get_element_by_id("next-link")
            page = yield from pb.click_link(anchor)
            assert page.document.title == "Demo"  # participant stayed put
            yield from snippet.flush()
            yield from session.wait_until_synced()

        run(sim, scenario())
        # The click travelled to the host, which navigated; the new page
        # then synchronized back to the participant.
        assert host_browser.page.document.title == "Page Two"
        assert pb.page.document.title == "Page Two"

    def test_form_cofill_merges_on_host(self):
        sim, _network, host_browser, pb, session = self.build()

        def scenario():
            snippet = yield from session.join(pb)
            yield from session.host_navigate("http://demo.com/")
            yield from session.wait_until_synced()
            form = pb.page.document.get_element_by_id("f")
            field = form.get_elements_by_tag_name("input")[0]
            pb.fill_field(field, "typed by alice")
            pb.dispatch_event(field, "change")
            yield from snippet.flush()
            yield from session.wait_until_synced()

        run(sim, scenario())
        host_field = host_browser.page.document.get_element_by_id("f").get_elements_by_tag_name("input")[0]
        assert host_field.get_attribute("value") == "typed by alice"

    def test_form_submit_roundtrip(self):
        sim, _network, host_browser, pb, session = self.build()

        def scenario():
            snippet = yield from session.join(pb)
            yield from session.host_navigate("http://demo.com/")
            yield from session.wait_until_synced()
            form = pb.page.document.get_element_by_id("f")
            field = form.get_elements_by_tag_name("input")[0]
            pb.fill_field(field, "co-browsing")
            yield from pb.submit_form(form)
            yield from snippet.flush()
            yield from session.wait_until_synced()

        run(sim, scenario())
        assert host_browser.page.document.get_element_by_id("echo").text_content == "co-browsing"
        assert pb.page.document.get_element_by_id("echo").text_content == "co-browsing"

    def test_mouse_moves_fan_out_to_other_participants(self):
        sim, network, host_browser, browsers = lan_world(participants=2)
        make_site(network)
        session = CoBrowsingSession(host_browser)

        def scenario():
            first = yield from session.join(browsers[0])
            second = yield from session.join(browsers[1])
            yield from session.host_navigate("http://demo.com/")
            yield from session.wait_until_synced()
            first.report_mouse_move(10, 20)
            yield from first.flush()
            # Let the second participant poll.
            yield sim.timeout(2.5)
            return second

        second = run(sim, scenario())
        moves = [a for a in second.stats.actions_received if isinstance(a, MouseMoveAction)]
        assert [(m.x, m.y) for m in moves] == [(10, 20)]


class TestTopologies:
    def test_multiple_participants(self):
        sim, network, host_browser, browsers = lan_world(participants=3)
        make_site(network)
        session = CoBrowsingSession(host_browser)

        def scenario():
            for browser in browsers:
                yield from session.join(browser)
            yield from session.host_navigate("http://demo.com/")
            yield from session.wait_until_synced()

        run(sim, scenario())
        for browser in browsers:
            assert browser.page.document.title == "Demo"
        assert session.agent.generation_count == 1  # content reused

    def test_join_and_leave_mid_session(self):
        sim, network, host_browser, browsers = lan_world(participants=2)
        make_site(network)
        session = CoBrowsingSession(host_browser)

        def scenario():
            first = yield from session.join(browsers[0])
            yield from session.host_navigate("http://demo.com/")
            yield from session.wait_until_synced()
            session.leave(first)
            # Late joiner gets the current page.
            second = yield from session.join(browsers[1])
            yield from session.wait_until_synced(second)
            yield from session.host_navigate("http://demo.com/two.html")
            yield from session.wait_until_synced(second)
            return first, second

        first, second = run(sim, scenario())
        assert browsers[1].page.document.title == "Page Two"
        # The departed participant stopped polling and kept the old page.
        assert browsers[0].page.document.title == "Demo"
        assert not first.connected

    def test_duplicate_participant_id_rejected(self):
        sim, network, host_browser, browsers = lan_world(participants=2)
        make_site(network)
        session = CoBrowsingSession(host_browser)

        def scenario():
            yield from session.join(browsers[0], participant_id="same")
            with pytest.raises(SessionError):
                yield from session.join(browsers[1], participant_id="same")
            return "done"

        assert run(sim, scenario()) == "done"

    def test_javascript_disabled_participant_rejected(self):
        sim, network, host_browser, (pb,) = lan_world()
        make_site(network)
        session = CoBrowsingSession(host_browser)
        pb.javascript_enabled = False
        with pytest.raises(SessionError):
            list(session.join(pb))

    def test_host_can_also_participate_in_another_session(self):
        """A user can host one session and join another (paper §3.3)."""
        sim = Simulator()
        network = Network(sim)
        make_site(network)
        pc_a = Host(network, "pc-a", LAN_PROFILE, segment="campus")
        pc_b = Host(network, "pc-b", LAN_PROFILE, segment="campus")
        browser_a = Browser(pc_a, name="a")  # hosts session 1
        browser_b1 = Browser(pc_b, name="b-host")  # hosts session 2
        browser_b2 = Browser(pc_b, name="b-join")  # second window on pc-b
        session_a = CoBrowsingSession(browser_a, port=3000)
        session_b = CoBrowsingSession(browser_b1, port=3001)

        def scenario():
            # pc-b's second window joins pc-a's session...
            yield from session_a.join(browser_b2)
            # ...while browser_a also joins pc-b's session? No — one
            # machine, two windows: browser_b1 hosts and browser_b2
            # participates elsewhere, simultaneously.
            yield from session_a.host_navigate("http://demo.com/")
            yield from session_a.wait_until_synced()
            yield from session_b.host_navigate("http://demo.com/two.html")

        run(sim, scenario())
        assert browser_b2.page.document.title == "Demo"
        assert browser_b1.page.document.title == "Page Two"


class TestWanAndNat:
    def test_wan_participant_syncs(self):
        sim = Simulator()
        network = Network(sim)
        make_site(network)
        host_pc = Host(network, "host-home", WAN_HOME_PROFILE, segment="home-a")
        part_pc = Host(network, "part-home", WAN_HOME_PROFILE, segment="home-b")
        host_browser = Browser(host_pc, name="bob")
        pb = Browser(part_pc, name="alice")
        session = CoBrowsingSession(host_browser)

        def scenario():
            snippet = yield from session.join(pb)
            yield from session.host_navigate("http://demo.com/")
            yield from session.wait_until_synced(timeout=120)
            return snippet

        snippet = run(sim, scenario())
        assert pb.page.document.title == "Demo"
        # Slow uplink shows in the sync latency.  Polling adds partial
        # poll-interval delay on top of the wire time; held transports
        # (long-poll / push) release on the change, so only the WAN wire
        # latency itself remains — still an order of magnitude above LAN.
        floor = 0.1 if snippet.transport_mode == "poll" else 0.05
        assert snippet.stats.last_sync_seconds > floor  # slow uplink shows

    def test_participant_joins_through_port_forwarding(self):
        sim = Simulator()
        network = Network(sim)
        make_site(network)
        gateway = NatGateway(network, "home-gw", WAN_HOME_PROFILE, segment="home-a")
        host_pc = Host(network, "host-private", LAN_PROFILE, segment="home-a", public=False)
        part_pc = Host(network, "part-home", WAN_HOME_PROFILE, segment="home-b")
        host_browser = Browser(host_pc, name="bob")
        pb = Browser(part_pc, name="alice")
        session = CoBrowsingSession(host_browser)
        gateway.forward(3000, "host-private", 3000)

        def scenario():
            snippet = AjaxSnippet(pb, "http://home-gw:3000/")
            yield from snippet.connect()
            session.participants[snippet.participant_id] = snippet
            yield from session.host_navigate("http://demo.com/")
            yield from session.wait_until_synced(timeout=120)

        run(sim, scenario())
        assert pb.page.document.title == "Demo"


class TestSecureSession:
    def test_authenticated_session_end_to_end(self):
        sim, network, host_browser, (pb,) = lan_world()
        make_site(network)
        secret = generate_session_secret(rng=random.Random(7))
        session = CoBrowsingSession(host_browser, secret=secret)

        def scenario():
            yield from session.join(pb)  # the session shares its secret
            yield from session.host_navigate("http://demo.com/")
            yield from session.wait_until_synced()

        run(sim, scenario())
        assert pb.page.document.title == "Demo"
        assert session.agent.stats["auth_failures"] == 0

    def test_wrong_secret_cannot_sync(self):
        sim, network, host_browser, (pb,) = lan_world()
        make_site(network)
        secret = generate_session_secret(rng=random.Random(7))
        session = CoBrowsingSession(host_browser, secret=secret)

        def scenario():
            snippet = AjaxSnippet(pb, session.agent.url, secret="wrong-secret-key")
            yield from snippet.connect()
            yield from session.host_navigate("http://demo.com/")
            yield sim.timeout(5)
            return snippet

        snippet = run(sim, scenario())
        assert snippet.stats.content_updates == 0
        assert session.agent.stats["auth_failures"] > 0


class TestCacheVsNonCacheMode:
    def participant_objects(self, cache_mode):
        sim, network, host_browser, (pb,) = lan_world()
        make_site(network)
        session = CoBrowsingSession(host_browser, cache_mode=cache_mode)

        def scenario():
            yield from session.join(pb)
            yield from session.host_navigate("http://demo.com/")
            yield from session.wait_until_synced()

        run(sim, scenario())
        return session, pb.page.objects

    def test_cache_mode_objects_come_from_agent(self):
        session, objects = self.participant_objects(cache_mode=True)
        assert objects, "participant downloaded no objects"
        assert all("host-pc:3000/obj" in obj.url for obj in objects)
        assert session.agent.stats["object_requests"] == len(objects)

    def test_non_cache_mode_objects_come_from_origin(self):
        session, objects = self.participant_objects(cache_mode=False)
        assert objects
        assert all("demo.com" in obj.url for obj in objects)
        assert session.agent.stats["object_requests"] == 0

    def test_cache_mode_works_without_origin_reachability(self):
        """The participant can render everything without ever contacting
        the origin server — the paper's accessibility benefit."""
        sim = Simulator()
        network = Network(sim)
        make_site(network)
        host_pc = Host(network, "host-pc", LAN_PROFILE, segment="campus")
        # The participant sits on an isolated segment that can only reach
        # the host (modelled: origin is fine, but we verify no requests).
        part_pc = Host(network, "part-pc", LAN_PROFILE, segment="campus")
        host_browser = Browser(host_pc, name="bob")
        pb = Browser(part_pc, name="alice")
        session = CoBrowsingSession(host_browser, cache_mode=True)

        def scenario():
            yield from session.join(pb)
            yield from session.host_navigate("http://demo.com/")
            yield from session.wait_until_synced()

        run(sim, scenario())
        assert pb.page.objects, "participant rendered no objects"
        origin_fetches = [
            o for o in pb.page.objects if o.url.startswith("http://demo.com")
        ]
        assert origin_fetches == []


class TestScenarioIntegration:
    def test_google_maps_co_browsing(self):
        sim, network, host_browser, (pb,) = lan_world()
        MapService(network)
        session = CoBrowsingSession(host_browser)

        def scenario():
            yield from session.join(pb)
            yield from session.host_navigate("http://%s/" % MAP_HOST)
            yield from session.wait_until_synced()
            driver = MapPageDriver(host_browser)
            yield from driver.search("653 5th Ave, New York")
            yield from session.wait_until_synced()

        run(sim, scenario())
        canvas = pb.page.document.get_element_by_id("map-canvas")
        assert canvas.get_attribute("data-x") == "1205"
        status = pb.page.document.get_element_by_id("statusbar")
        assert "653 5th ave" in status.text_content.lower()

    def test_shop_cobrowsing_session_protected(self):
        sim, network, host_browser, (pb,) = lan_world()
        shop = ShopService(network)
        session = CoBrowsingSession(host_browser)

        def scenario():
            snippet = yield from session.join(pb)
            yield from session.host_navigate("http://%s/item/mba-13-128" % SHOP_HOST)
            yield from session.wait_until_synced()
            # Participant clicks "Add to Cart": a submit action goes home.
            form = pb.page.document.get_element_by_id("addform")
            yield from pb.submit_form(form)
            yield from snippet.flush()
            yield from session.wait_until_synced()

        run(sim, scenario())
        # The host followed the redirect to /cart with ITS session cookie.
        assert host_browser.page.document.get_element_by_id("cart-items") is not None
        # And the participant sees the cart page content too.
        assert pb.page.document.get_element_by_id("cart-items") is not None
        assert shop.session_count() == 1  # only the host has a session
