"""Unit tests for Store and Resource primitives."""

import pytest

from repro.sim import Resource, SimulationError, Simulator, Store, StoreClosed, drain


def run(sim, generator):
    return sim.run_until_complete(sim.process(generator))


def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)

    def proc():
        yield store.put("a")
        value = yield store.get()
        return value

    assert run(sim, proc()) == "a"


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    log = []

    def getter():
        value = yield store.get()
        log.append((sim.now, value))

    def putter():
        yield sim.timeout(4)
        yield store.put("late")

    sim.process(getter())
    sim.process(putter())
    sim.run()
    assert log == [(4.0, "late")]


def test_store_fifo_ordering():
    sim = Simulator()
    store = Store(sim)
    received = []

    def producer():
        for i in range(5):
            yield store.put(i)

    def consumer():
        for _ in range(5):
            value = yield store.get()
            received.append(value)

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert received == [0, 1, 2, 3, 4]


def test_store_capacity_blocks_putter():
    sim = Simulator()
    store = Store(sim, capacity=1)
    log = []

    def producer():
        yield store.put("first")
        log.append(("put-first", sim.now))
        yield store.put("second")
        log.append(("put-second", sim.now))

    def consumer():
        yield sim.timeout(10)
        value = yield store.get()
        log.append(("got", value, sim.now))

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert ("put-first", 0.0) in log
    assert ("got", "first", 10.0) in log
    assert ("put-second", 10.0) in log


def test_store_invalid_capacity():
    sim = Simulator()
    with pytest.raises(ValueError):
        Store(sim, capacity=0)


def test_try_get_nonblocking():
    sim = Simulator()
    store = Store(sim)
    assert store.try_get() is None
    store.put("x")
    assert store.try_get() == "x"
    assert store.try_get() is None


def test_closed_store_rejects_put():
    sim = Simulator()
    store = Store(sim)
    store.close()
    with pytest.raises(StoreClosed):
        store.put("x")


def test_closed_store_drains_then_fails_get():
    sim = Simulator()
    store = Store(sim)
    store.put("left-over")
    store.close()

    def proc():
        value = yield store.get()
        try:
            yield store.get()
        except StoreClosed:
            return (value, "closed")
        return (value, "no error")

    assert run(sim, proc()) == ("left-over", "closed")


def test_close_fails_blocked_getters():
    sim = Simulator()
    store = Store(sim)
    results = []

    def getter():
        try:
            yield store.get()
        except StoreClosed:
            results.append("closed")

    def closer():
        yield sim.timeout(1)
        store.close()

    sim.process(getter())
    sim.process(closer())
    sim.run()
    assert results == ["closed"]


def test_drain_returns_all_buffered():
    sim = Simulator()
    store = Store(sim)
    for i in range(3):
        store.put(i)
    sim.run()
    assert drain(store) == [0, 1, 2]
    assert len(store) == 0


def test_resource_serializes_users():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    log = []

    def user(tag, hold):
        yield resource.request()
        log.append((tag, "start", sim.now))
        yield sim.timeout(hold)
        resource.release()
        log.append((tag, "end", sim.now))

    sim.process(user("a", 2))
    sim.process(user("b", 3))
    sim.run()
    assert log == [
        ("a", "start", 0.0),
        ("a", "end", 2.0),
        ("b", "start", 2.0),
        ("b", "end", 5.0),
    ]


def test_resource_capacity_two_overlaps():
    sim = Simulator()
    resource = Resource(sim, capacity=2)
    starts = []

    def user(tag):
        yield resource.request()
        starts.append((tag, sim.now))
        yield sim.timeout(5)
        resource.release()

    for tag in ("a", "b", "c"):
        sim.process(user(tag))
    sim.run()
    assert starts == [("a", 0.0), ("b", 0.0), ("c", 5.0)]


def test_resource_release_without_request():
    sim = Simulator()
    resource = Resource(sim)
    with pytest.raises(SimulationError):
        resource.release()


def test_resource_invalid_capacity():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_resource_queued_count():
    sim = Simulator()
    resource = Resource(sim, capacity=1)

    def holder():
        yield resource.request()
        yield sim.timeout(10)
        resource.release()

    def waiter():
        yield resource.request()
        resource.release()

    sim.process(holder())
    sim.process(waiter())
    sim.run(until=5)
    assert resource.queued() == 1
    sim.run()
    assert resource.queued() == 0
