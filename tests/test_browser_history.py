"""Tests for browser history navigation (back / forward / reload)."""

import pytest

from repro.browser import Browser, NavigationError
from repro.net import LAN_PROFILE, Host, Network
from repro.sim import Simulator
from repro.webserver import OriginServer, StaticSite


def build():
    sim = Simulator()
    network = Network(sim)
    site = StaticSite("h.com")
    for name in ("one", "two", "three"):
        site.add_page(
            "/%s" % name,
            "<html><head><title>%s</title></head><body>%s</body></html>" % (name, name),
        )
    OriginServer(network, "h.com", site.handle)
    browser = Browser(Host(network, "u-pc", LAN_PROFILE, segment="lan"), name="u")
    return sim, browser


def run(sim, generator):
    return sim.run_until_complete(sim.process(generator))


def visit_all(browser):
    for name in ("one", "two", "three"):
        yield from browser.navigate("http://h.com/%s" % name)


class TestBackForward:
    def test_back_returns_to_previous_page(self):
        sim, browser = build()

        def scenario():
            yield from visit_all(browser)
            page = yield from browser.back()
            return page

        page = run(sim, scenario())
        assert page.document.title == "two"
        assert browser.address_bar == "http://h.com/two"

    def test_back_twice_then_forward(self):
        sim, browser = build()

        def scenario():
            yield from visit_all(browser)
            yield from browser.back()
            yield from browser.back()
            assert browser.page.document.title == "one"
            page = yield from browser.forward()
            return page

        page = run(sim, scenario())
        assert page.document.title == "two"

    def test_back_at_start_is_noop(self):
        sim, browser = build()

        def scenario():
            yield from browser.navigate("http://h.com/one")
            page = yield from browser.back()
            return page

        page = run(sim, scenario())
        assert page.document.title == "one"
        assert not browser.can_go_back

    def test_forward_at_end_is_noop(self):
        sim, browser = build()

        def scenario():
            yield from visit_all(browser)
            page = yield from browser.forward()
            return page

        page = run(sim, scenario())
        assert page.document.title == "three"
        assert not browser.can_go_forward

    def test_history_preserved_across_back(self):
        sim, browser = build()

        def scenario():
            yield from visit_all(browser)
            yield from browser.back()

        run(sim, scenario())
        assert browser.history == [
            "http://h.com/one",
            "http://h.com/two",
            "http://h.com/three",
        ]
        assert browser.can_go_forward

    def test_new_navigation_truncates_forward_entries(self):
        sim, browser = build()

        def scenario():
            yield from visit_all(browser)
            yield from browser.back()
            yield from browser.back()  # at "one"
            yield from browser.navigate("http://h.com/three")

        run(sim, scenario())
        assert browser.history == ["http://h.com/one", "http://h.com/three"]
        assert not browser.can_go_forward

    def test_can_go_flags(self):
        sim, browser = build()

        def scenario():
            assert not browser.can_go_back and not browser.can_go_forward
            yield from browser.navigate("http://h.com/one")
            assert not browser.can_go_back
            yield from browser.navigate("http://h.com/two")
            assert browser.can_go_back and not browser.can_go_forward
            yield from browser.back()
            assert not browser.can_go_back and browser.can_go_forward

        run(sim, scenario())


class TestReload:
    def test_reload_refetches_current(self):
        sim, browser = build()

        def scenario():
            yield from browser.navigate("http://h.com/one")
            requests_before = browser.client.requests_sent
            page = yield from browser.reload()
            return page, browser.client.requests_sent - requests_before

        page, extra_requests = run(sim, scenario())
        assert page.document.title == "one"
        assert extra_requests >= 1
        assert browser.history == ["http://h.com/one"]

    def test_reload_without_page_rejected(self):
        sim, browser = build()
        with pytest.raises(NavigationError):
            list(browser.reload())

    def test_reload_keeps_position_mid_history(self):
        sim, browser = build()

        def scenario():
            yield from visit_all(browser)
            yield from browser.back()
            yield from browser.reload()

        run(sim, scenario())
        assert browser.page.document.title == "two"
        assert len(browser.history) == 3
        assert browser.can_go_back and browser.can_go_forward
