"""The pluggable transport layer and its adaptive controller.

Covers mode coercion and environment forcing, per-member negotiation on
the wire (request key, grant header, snippet adoption), survival of a
negotiated mode across relay death and re-attachment, byte-identity of
a pinned ``transport="poll"`` session with the seed default, and the
:class:`AdaptiveTransportController`'s escalation / de-escalation state
machine — including a hypothesis property that dwell-window hysteresis
never lets a member's mode flap faster than the dwell.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.browser import Browser
from repro.core import (
    CoBrowsingSession,
    TRANSPORT_LONGPOLL,
    TRANSPORT_MODES,
    TRANSPORT_POLL,
    TRANSPORT_PUSH,
    AdaptiveTransportController,
    IntervalPollTransport,
    LongPollTransport,
    PushTransport,
    coerce_transport,
    coerce_transport_mode,
    default_transport_mode,
    transport_for_mode,
)
from repro.core.transport import MODE_INDEX, TRANSPORT_ENV
from repro.net import LAN_PROFILE, Host, Network
from repro.obs import EventBus, TRANSPORT_SWITCH
from repro.sim import Simulator
from repro.webserver import OriginServer, StaticSite

PAGE = (
    "<html><head><title>Transport test</title></head><body>"
    + "".join("<p id='p%d'>paragraph %d body</p>" % (i, i) for i in range(8))
    + "</body></html>"
)


def build_world(participants=2, **session_kwargs):
    sim = Simulator()
    network = Network(sim)
    site = StaticSite("site.com")
    site.add_page("/", PAGE)
    OriginServer(network, "site.com", site.handle)
    host_pc = Host(network, "host-pc", LAN_PROFILE, segment="campus")
    host_browser = Browser(host_pc, name="bob")
    session_kwargs.setdefault("poll_interval", 0.2)
    session = CoBrowsingSession(host_browser, **session_kwargs)
    browsers = []
    for index in range(participants):
        pc = Host(network, "part-pc-%d" % index, LAN_PROFILE, segment="campus")
        browsers.append(Browser(pc, name="p%d" % index))
    return sim, session, browsers


def run(sim, generator, limit=1e9):
    return sim.run_until_complete(sim.process(generator), limit=limit)


def edit_paragraph(browser, index, text):
    from repro.html import Text

    def mutate(document):
        target = document.get_element_by_id("p%d" % index)
        target.remove_all_children()
        target.append_child(Text(text))

    browser.mutate_document(mutate)


class TestModesAndCoercion:
    def test_mode_ladder_order(self):
        assert TRANSPORT_MODES == ("poll", "longpoll", "push")
        assert [MODE_INDEX[m] for m in TRANSPORT_MODES] == [0, 1, 2]

    def test_transport_for_mode_roundtrip(self):
        for mode in TRANSPORT_MODES:
            assert transport_for_mode(mode).mode == mode
        with pytest.raises(ValueError):
            transport_for_mode("carrier-pigeon")

    def test_coerce_transport_accepts_instance_and_string(self):
        instance = LongPollTransport(hold_timeout=3.0)
        assert coerce_transport(instance) is instance
        assert coerce_transport("push").mode == TRANSPORT_PUSH
        with pytest.raises(TypeError):
            coerce_transport(42)

    def test_coerce_transport_mode(self):
        assert coerce_transport_mode(PushTransport()) == TRANSPORT_PUSH
        assert coerce_transport_mode("longpoll") == TRANSPORT_LONGPOLL
        with pytest.raises(ValueError):
            coerce_transport_mode("smoke-signals")

    def test_env_forces_default_mode(self, monkeypatch):
        monkeypatch.setenv(TRANSPORT_ENV, "longpoll")
        assert default_transport_mode() == TRANSPORT_LONGPOLL
        assert coerce_transport(None).mode == TRANSPORT_LONGPOLL
        monkeypatch.setenv(TRANSPORT_ENV, "bogus")
        with pytest.raises(ValueError):
            default_transport_mode()
        monkeypatch.delenv(TRANSPORT_ENV)
        assert default_transport_mode() == TRANSPORT_POLL

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            LongPollTransport(hold_timeout=0)
        with pytest.raises(ValueError):
            PushTransport(max_envelopes=0)
        with pytest.raises(ValueError):
            PushTransport(stream_linger=-1.0)
        assert IntervalPollTransport().holds is False
        assert "hold" in PushTransport().describe()


class TestNegotiation:
    def test_session_transport_reaches_both_ends(self):
        sim, session, (alice,) = build_world(
            participants=1, transport="longpoll"
        )

        def scenario():
            snippet = yield from session.join(alice)
            yield from session.host_navigate("http://site.com/")
            yield from session.wait_until_synced()
            return snippet

        snippet = run(sim, scenario())
        assert snippet.transport_mode == TRANSPORT_LONGPOLL
        assert session.agent.transport.mode == TRANSPORT_LONGPOLL
        assert (
            session.agent.transport_mode_for(snippet.participant_id)
            == TRANSPORT_LONGPOLL
        )

    def test_member_override_adopted_via_header(self):
        events = EventBus()
        sim, session, (alice,) = build_world(
            participants=1, transport="poll", events=events
        )

        def scenario():
            snippet = yield from session.join(alice)
            yield from session.host_navigate("http://site.com/")
            yield from session.wait_until_synced()
            pid = snippet.participant_id
            session.agent.set_member_transport(pid, "longpoll", reason="test")
            # The member learns its new mode from X-RCB-Transport on its
            # next *answered* exchange — its freshly-held poll releases
            # on the edit and carries the grant header back.
            yield sim.timeout(0.5)
            edit_paragraph(session.host_browser, 1, "release the hold")
            yield from session.wait_until_synced(timeout=10.0)
            yield sim.timeout(0.5)
            return snippet

        snippet = run(sim, scenario())
        assert snippet.transport_mode == TRANSPORT_LONGPOLL
        assert session.agent.stats["transport_switches"] >= 1
        switches = events.events(type=TRANSPORT_SWITCH)
        assert switches
        assert switches[0].data["participant"] == snippet.participant_id
        assert switches[0].data["to_mode"] == TRANSPORT_LONGPOLL

    def test_negotiated_mode_survives_relay_death_and_reattach(self):
        """An orphan re-attaching to its grandparent keeps the mode it
        had negotiated with the dead parent (salvaged upstream state)."""
        sim, session, browsers = build_world(participants=2)
        session.fanout_tree(branching=1)  # chain: root -> p0 -> p1

        def scenario():
            for browser in browsers:
                yield from session.join(browser)
            yield from session.host_navigate("http://site.com/")
            yield from session.wait_until_synced()
            # p1 polls the relay p0; escalate p1 at *that* agent.
            session.relays["p0"].set_member_transport("p1", "longpoll")
            # An edit releases p1's freshly-held poll so the grant
            # header reaches it.
            edit_paragraph(session.host_browser, 0, "carry the grant")
            yield from session.wait_until_synced(timeout=10.0)
            yield sim.timeout(0.5)
            assert session.relays["p1"].upstream.transport_mode == TRANSPORT_LONGPOLL
            session.fail_relay("p0")
            yield sim.timeout(10.0)  # orphan climbs to the root
            edit_paragraph(session.host_browser, 2, "after rescue")
            yield from session.wait_until_synced(timeout=30.0)

        run(sim, scenario())
        survivor = session.relays["p1"]
        assert survivor.upstream is not None
        # The re-attached upstream snippet kept requesting long poll,
        # and the root granted it.
        assert survivor.upstream.transport_mode == TRANSPORT_LONGPOLL
        assert session.agent.transport_mode_for("p1") == TRANSPORT_LONGPOLL

    def test_pinned_poll_is_byte_identical_to_seed_default(self, monkeypatch):
        """``transport="poll"`` (what a disabled controller leaves you
        with) moves exactly the seed's bytes: same request count, same
        bytes on both directions of the wire."""

        def traffic(session_kwargs):
            sim, session, (alice,) = build_world(participants=1, **session_kwargs)

            def scenario():
                snippet = yield from session.join(alice)
                yield from session.host_navigate("http://site.com/")
                yield from session.wait_until_synced()
                for index in range(3):
                    edit_paragraph(session.host_browser, index, "edit %d" % index)
                    yield from session.wait_until_synced(timeout=10.0)
                yield sim.timeout(2.0)
                return snippet

            snippet = run(sim, scenario())
            client = snippet.browser.client
            return (
                client.requests_sent,
                client.bytes_received,
                session.agent.stats["full_bytes_sent"],
                session.agent.stats["delta_bytes_sent"],
            )

        monkeypatch.delenv(TRANSPORT_ENV, raising=False)
        seed = traffic({})  # transport unset: the seed construction
        pinned = traffic({"transport": "poll"})
        assert pinned == seed


class _StubAgent:
    def __init__(self, poll_interval=1.0):
        self.poll_interval = poll_interval
        self.stats = {"polls": 0}
        self.switches = []

    def transport_mode_for(self, member):
        return TRANSPORT_POLL

    def set_member_transport(self, member, mode, reason=None):
        self.switches.append((member, mode, reason))


class _StubSim:
    def __init__(self):
        self.now = 0.0


class _StubSession:
    def __init__(self, members, agent):
        self.sim = _StubSim()
        self.agent = agent
        self._members = list(members)

    def member_times(self):
        return {member: 0 for member in self._members}


class _StubMonitor:
    """staleness_p95 answered from a settable per-member table."""

    rules = ()

    def __init__(self):
        self.staleness = {}

    def staleness_p95(self, member):
        return self.staleness.get(member, 0.0)


def make_controller(members=("m0",), **kwargs):
    agent = _StubAgent()
    session = _StubSession(members, agent)
    monitor = _StubMonitor()
    kwargs.setdefault("stale_breach_ms", 1000.0)
    kwargs.setdefault("stale_clear_ms", 500.0)
    controller = AdaptiveTransportController(session, monitor, **kwargs)
    return controller, session, monitor, agent


class TestAdaptiveController:
    def test_breach_streak_escalates_one_step(self):
        controller, session, monitor, agent = make_controller(
            escalate_after=2, dwell=0.0
        )
        monitor.staleness["m0"] = 5000.0
        controller.check()  # streak 1: no switch yet
        assert not agent.switches
        session.sim.now = 1.0
        controller.check()  # streak 2: escalate
        assert agent.switches == [("m0", TRANSPORT_LONGPOLL, "staleness-breach")]
        assert controller.member_mode("m0") == TRANSPORT_LONGPOLL

    def test_escalation_climbs_the_full_ladder(self):
        controller, session, monitor, agent = make_controller(
            escalate_after=1, dwell=0.0
        )
        monitor.staleness["m0"] = 9999.0
        for tick in range(3):
            session.sim.now = float(tick)
            controller.check()
        modes = [mode for _, mode, _ in agent.switches]
        assert modes == [TRANSPORT_LONGPOLL, TRANSPORT_PUSH]
        assert controller.member_mode("m0") == TRANSPORT_PUSH

    def test_clear_staleness_resets_the_streak(self):
        controller, session, monitor, agent = make_controller(escalate_after=2)
        monitor.staleness["m0"] = 5000.0
        controller.check()
        monitor.staleness["m0"] = 100.0  # below the clear threshold
        session.sim.now = 1.0
        controller.check()
        monitor.staleness["m0"] = 5000.0
        session.sim.now = 2.0
        controller.check()  # streak restarted: still only 1
        assert not agent.switches

    def test_host_pressure_widens_interval_and_demotes(self):
        controller, session, monitor, agent = make_controller(
            members=("m0", "m1"),
            escalate_after=1,
            deescalate_after=2,
            dwell=0.0,
            host_poll_budget=10.0,
            widen_factor=2.0,
        )
        monitor.staleness["m0"] = 9999.0
        controller.check()  # escalates m0 to longpoll
        assert controller.member_mode("m0") == TRANSPORT_LONGPOLL
        monitor.staleness["m0"] = 0.0
        # Feed a poll rate far above budget for two consecutive checks.
        for tick in (1, 2):
            agent.stats["polls"] += 1000
            session.sim.now = float(tick)
            controller.check()
        assert agent.poll_interval == 2.0  # widened once by factor 2
        assert controller.member_mode("m0") == TRANSPORT_POLL
        assert ("m0", TRANSPORT_POLL, "host-pressure") in agent.switches

    def test_poll_interval_widening_is_capped(self):
        controller, session, monitor, agent = make_controller(
            deescalate_after=1,
            host_poll_budget=0.5,
            widen_factor=10.0,
            max_poll_interval=4.0,
        )
        for tick in (1, 2, 3):
            agent.stats["polls"] += 1000
            session.sim.now = float(tick)
            controller.check()
        assert agent.poll_interval == 4.0

    def test_departed_members_are_pruned(self):
        controller, session, monitor, agent = make_controller(
            members=("m0", "m1")
        )
        controller.check()
        assert set(controller._members) == {"m0", "m1"}
        session._members = ["m0"]
        session.sim.now = 1.0
        controller.check()
        assert set(controller._members) == {"m0"}

    def test_switch_log_records_every_transition(self):
        controller, session, monitor, agent = make_controller(
            escalate_after=1, dwell=0.0
        )
        monitor.staleness["m0"] = 9999.0
        session.sim.now = 3.5
        controller.check()
        assert controller.switches == [
            (3.5, "m0", TRANSPORT_POLL, TRANSPORT_LONGPOLL, "staleness-breach")
        ]

    @settings(max_examples=60, deadline=None)
    @given(
        staleness=st.lists(
            st.floats(min_value=0.0, max_value=20000.0, allow_nan=False),
            min_size=4,
            max_size=60,
        ),
        pressure=st.lists(st.booleans(), min_size=4, max_size=60),
        dwell=st.floats(min_value=0.5, max_value=20.0, allow_nan=False),
    )
    def test_no_flap_within_dwell(self, staleness, pressure, dwell):
        """Property: however the signals dance, two switches of the same
        member are never closer together than the dwell window."""
        controller, session, monitor, agent = make_controller(
            escalate_after=1, deescalate_after=1, dwell=dwell,
            host_poll_budget=10.0,
        )
        for tick, p95 in enumerate(staleness):
            session.sim.now = tick * 0.25
            monitor.staleness["m0"] = p95
            if pressure[tick % len(pressure)]:
                agent.stats["polls"] += 1000
            controller.check()
        times = [t for t, member, _, _, _ in controller.switches if member == "m0"]
        for earlier, later in zip(times, times[1:]):
            assert later - earlier >= dwell


class TestSessionFactory:
    def test_session_builds_controller(self):
        sim, session, _ = build_world(participants=0)

        class _Monitor(_StubMonitor):
            pass

        controller = session.adaptive_transport(_Monitor(), dwell=2.0)
        assert isinstance(controller, AdaptiveTransportController)
        assert controller.agent is session.agent
        assert controller.dwell == 2.0
