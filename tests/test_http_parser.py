"""Unit tests for the incremental HTTP parser."""

import pytest

from repro.http import (
    HttpError,
    RequestParser,
    ResponseParser,
    parse_request_bytes,
    parse_response_bytes,
)


class TestRequestParser:
    def test_simple_get(self):
        request = parse_request_bytes(b"GET /x HTTP/1.1\r\nHost: a.com\r\n\r\n")
        assert request.method == "GET"
        assert request.target == "/x"
        assert request.headers.get("Host") == "a.com"
        assert request.body == b""

    def test_post_with_body(self):
        wire = b"POST /f HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd"
        request = parse_request_bytes(wire)
        assert request.body == b"abcd"

    def test_byte_at_a_time_feeding(self):
        wire = b"POST /f HTTP/1.1\r\nContent-Length: 3\r\n\r\nxyz"
        parser = RequestParser()
        messages = []
        for index in range(len(wire)):
            messages.extend(parser.feed(wire[index : index + 1]))
        assert len(messages) == 1
        assert messages[0].body == b"xyz"
        assert parser.pending_bytes == 0

    def test_two_pipelined_requests_in_one_chunk(self):
        wire = (
            b"GET /a HTTP/1.1\r\n\r\n"
            b"POST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nok"
        )
        messages = RequestParser().feed(wire)
        assert [m.target for m in messages] == ["/a", "/b"]
        assert messages[1].body == b"ok"

    def test_round_trip_through_to_bytes(self):
        original = parse_request_bytes(
            b"POST /p?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 2\r\n\r\nhi"
        )
        again = parse_request_bytes(original.to_bytes())
        assert again.method == original.method
        assert again.target == original.target
        assert again.body == original.body

    def test_bad_request_line(self):
        with pytest.raises(HttpError):
            parse_request_bytes(b"GARBAGE\r\n\r\n")

    def test_bad_version(self):
        with pytest.raises(HttpError):
            parse_request_bytes(b"GET / SPDY/3\r\n\r\n")

    def test_bad_header_line(self):
        with pytest.raises(HttpError):
            parse_request_bytes(b"GET / HTTP/1.1\r\nnocolonhere\r\n\r\n")

    def test_bad_content_length(self):
        with pytest.raises(HttpError):
            parse_request_bytes(b"GET / HTTP/1.1\r\nContent-Length: ten\r\n\r\n")

    def test_chunked_rejected(self):
        with pytest.raises(HttpError, match="chunked"):
            parse_request_bytes(
                b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
            )

    def test_incomplete_returns_nothing(self):
        parser = RequestParser()
        assert parser.feed(b"GET / HTTP/1.1\r\nHos") == []
        assert parser.pending_bytes > 0

    def test_body_split_across_chunks(self):
        parser = RequestParser()
        assert parser.feed(b"POST / HTTP/1.1\r\nContent-Length: 6\r\n\r\nabc") == []
        messages = parser.feed(b"def")
        assert messages[0].body == b"abcdef"

    def test_oversized_headers_rejected(self):
        parser = RequestParser()
        with pytest.raises(HttpError, match="header section"):
            parser.feed(b"GET / HTTP/1.1\r\nX: " + b"a" * 70000)


class TestResponseParser:
    def test_simple_response(self):
        response = parse_response_bytes(
            b"HTTP/1.1 200 OK\r\nContent-Type: text/html\r\nContent-Length: 5\r\n\r\nhello"
        )
        assert response.status == 200
        assert response.reason == "OK"
        assert response.body == b"hello"
        assert response.content_type == "text/html"

    def test_reason_with_spaces(self):
        response = parse_response_bytes(b"HTTP/1.1 404 Not Found\r\n\r\n")
        assert response.reason == "Not Found"

    def test_missing_reason_tolerated(self):
        response = parse_response_bytes(b"HTTP/1.1 204\r\n\r\n")
        assert response.status == 204

    def test_bad_status_line(self):
        with pytest.raises(HttpError):
            parse_response_bytes(b"NOTHTTP 200 OK\r\n\r\n")
        with pytest.raises(HttpError):
            parse_response_bytes(b"HTTP/1.1 abc OK\r\n\r\n")

    def test_round_trip(self):
        from repro.http import Headers, HttpResponse

        original = HttpResponse(302, Headers([("Location", "/next")]), b"")
        again = parse_response_bytes(original.to_bytes())
        assert again.status == 302
        assert again.headers.get("Location") == "/next"

    def test_streamed_responses(self):
        parser = ResponseParser()
        first = b"HTTP/1.1 200 OK\r\nContent-Length: 1\r\n\r\na"
        second = b"HTTP/1.1 200 OK\r\nContent-Length: 1\r\n\r\nb"
        messages = []
        for chunk in (first[:10], first[10:] + second[:5], second[5:]):
            messages.extend(parser.feed(chunk))
        assert [m.body for m in messages] == [b"a", b"b"]

    def test_exactly_one_required(self):
        with pytest.raises(HttpError):
            parse_response_bytes(b"HTTP/1.1 200 OK\r\nContent-Length: 1\r\n\r\nab")
