"""Tests for kernel instrumentation."""

import pytest

from repro.sim import Simulator
from repro.sim.trace import InstrumentedSimulator, KernelStats


def run_workload(sim):
    def worker(tag):
        for _ in range(3):
            yield sim.timeout(1.0)

    for tag in range(4):
        sim.process(worker(tag))
    sim.run()


class TestInstrumentedSimulator:
    def test_counts_are_consistent(self):
        sim = InstrumentedSimulator()
        run_workload(sim)
        stats = sim.kernel_stats
        assert stats.events_processed > 0
        assert stats.events_scheduled >= stats.events_processed
        assert stats.max_queue_depth >= 1
        assert stats.failures_processed == 0

    def test_same_results_as_plain_simulator(self):
        plain = Simulator()
        run_workload(plain)
        instrumented = InstrumentedSimulator()
        run_workload(instrumented)
        assert instrumented.now == plain.now

    def test_type_histogram(self):
        sim = InstrumentedSimulator()
        run_workload(sim)
        assert "Timeout" in sim.kernel_stats.by_type
        assert sim.kernel_stats.by_type["Timeout"] == 12

    def test_trace_bounded(self):
        sim = InstrumentedSimulator(trace_capacity=5)
        run_workload(sim)
        trace = sim.kernel_stats.recent_trace()
        assert len(trace) == 5
        assert all("  " in line for line in trace)

    def test_trace_disabled(self):
        sim = InstrumentedSimulator(trace_capacity=0)
        run_workload(sim)
        assert sim.kernel_stats.recent_trace() == []

    def test_failure_counted(self):
        sim = InstrumentedSimulator()

        def crasher():
            yield sim.timeout(1)
            raise ValueError("x")

        def watcher():
            try:
                yield sim.process(crasher())
            except ValueError:
                pass

        sim.run_until_complete(sim.process(watcher()))
        assert sim.kernel_stats.failures_processed >= 1

    def test_summary_format(self):
        sim = InstrumentedSimulator()
        run_workload(sim)
        summary = sim.kernel_stats.summary()
        assert "scheduled" in summary
        assert "Timeout" in summary

    def test_reset(self):
        sim = InstrumentedSimulator()
        run_workload(sim)
        sim.kernel_stats.reset()
        assert sim.kernel_stats.events_processed == 0
        assert sim.kernel_stats.by_type == {}
        assert sim.kernel_stats.recent_trace() == []

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            KernelStats(trace_capacity=-1)

    def test_full_stack_runs_on_instrumented_kernel(self):
        """The whole RCB stack works unchanged on the tracing kernel."""
        from repro.browser import Browser
        from repro.core import CoBrowsingSession
        from repro.net import LAN_PROFILE, Host, Network
        from repro.webserver import OriginServer, StaticSite

        sim = InstrumentedSimulator(trace_capacity=40)
        network = Network(sim)
        site = StaticSite("s.com")
        site.add_page("/", "<html><head><title>T</title></head><body>b</body></html>")
        OriginServer(network, "s.com", site.handle)
        hb = Browser(Host(network, "h-pc", LAN_PROFILE, segment="lan"), name="h")
        pb = Browser(Host(network, "p-pc", LAN_PROFILE, segment="lan"), name="p")
        session = CoBrowsingSession(hb)

        def scenario():
            yield from session.join(pb)
            yield from session.host_navigate("http://s.com/")
            yield from session.wait_until_synced()

        sim.run_until_complete(sim.process(scenario()))
        assert pb.page.document.title == "T"
        # Threshold sized so any full join+navigate+sync clears it in
        # every transport mode (held transports need fewer poll events).
        assert sim.kernel_stats.events_processed > 40
        assert len(sim.kernel_stats.recent_trace()) == 40
