"""The structured event log: EventBus semantics and wire neutrality.

Covers the observability tentpole's emission layer: typed sim-time
events with trace correlation, per-component ring buffers (a chatty
tier cannot evict a quiet tier's evidence), eviction-proof all-time
totals, query filters, subscribers — and the opt-in contract: a session
run with the bus attached carries exactly the same wire bytes as one
without, because events never ride the protocol.
"""

import pytest

from repro.browser import Browser
from repro.core import CoBrowsingSession
from repro.net import LAN_PROFILE, Host, Network
from repro.obs import (
    HMAC_REJECT,
    KNOWN_EVENT_TYPES,
    MEMBER_JOIN,
    POLL_SERVED,
    RESYNC_FORCED,
    EventBus,
    MetricsRegistry,
    SpanContext,
    Tracer,
    events_to_jsonl,
)
from repro.sim import Simulator
from repro.webserver import OriginServer, StaticSite


class TestEvent:
    def test_to_dict_omits_absent_fields(self):
        bus = EventBus()
        bare = bus.emit(MEMBER_JOIN, 1.0, node="agent")
        assert bare.to_dict() == {
            "seq": 1,
            "t": 1.0,
            "type": MEMBER_JOIN,
            "node": "agent",
        }

    def test_to_dict_carries_trace_and_data(self):
        bus = EventBus()
        context = SpanContext("t7", "s3")
        event = bus.emit(POLL_SERVED, 2.5, node="agent", trace=context, bytes=512)
        row = event.to_dict()
        assert row["trace_id"] == "t7"
        assert row["span_id"] == "s3"
        assert row["data"] == {"bytes": 512}

    def test_trace_accepts_span_or_context(self):
        tracer = Tracer()
        span = tracer.start_span("poll", t=0.0)
        bus = EventBus()
        from_span = bus.emit(POLL_SERVED, 0.0, trace=span)
        from_context = bus.emit(POLL_SERVED, 0.0, trace=span.context)
        assert from_span.trace_id == from_context.trace_id == span.trace_id
        assert from_span.span_id == from_context.span_id == span.span_id


class TestEventBus:
    def test_seq_is_global_emission_order(self):
        bus = EventBus()
        first = bus.emit(MEMBER_JOIN, 5.0, node="b")
        second = bus.emit(MEMBER_JOIN, 1.0, node="a")
        assert (first.seq, second.seq) == (1, 2)
        # Queries sort by seq (emission order), not by timestamp.
        assert [e.node for e in bus.events()] == ["b", "a"]

    def test_per_node_rings_isolate_eviction(self):
        bus = EventBus(ring_size=3)
        bus.emit(MEMBER_JOIN, 0.0, node="quiet")
        for tick in range(50):
            bus.emit(POLL_SERVED, float(tick), node="chatty")
        # The chatty component evicted its own history only.
        assert bus.count(node="chatty") == 3
        assert bus.count(node="quiet") == 1
        assert bus.events(node="quiet")[0].type == MEMBER_JOIN

    def test_totals_survive_eviction(self):
        bus = EventBus(ring_size=2)
        for tick in range(10):
            bus.emit(POLL_SERVED, float(tick), node="agent")
        assert bus.count(type=POLL_SERVED) == 2
        assert bus.total(POLL_SERVED) == 10
        assert bus.total(HMAC_REJECT) == 0

    def test_filters_compose(self):
        bus = EventBus()
        bus.emit(POLL_SERVED, 1.0, node="agent")
        bus.emit(POLL_SERVED, 2.0, node="relay")
        bus.emit(RESYNC_FORCED, 3.0, node="relay")
        bus.emit(POLL_SERVED, 4.0, node="relay")
        assert bus.count(type=POLL_SERVED) == 3
        assert bus.count(node="relay") == 3
        assert bus.count(type=POLL_SERVED, node="relay", since=2.5) == 1
        tail = bus.events(last=2)
        assert [event.t for event in tail] == [3.0, 4.0]
        assert bus.events(node="nobody") == []

    def test_subscribers_observe_synchronously(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        emitted = bus.emit(MEMBER_JOIN, 0.0, node="agent")
        bus.unsubscribe(seen.append)
        bus.emit(MEMBER_JOIN, 1.0, node="agent")
        assert seen == [emitted]

    def test_clear_keeps_totals(self):
        bus = EventBus()
        bus.emit(POLL_SERVED, 0.0, node="agent")
        bus.clear()
        assert len(bus) == 0
        assert bus.events() == []
        assert bus.total(POLL_SERVED) == 1

    def test_nodes_lists_components(self):
        bus = EventBus()
        bus.emit(POLL_SERVED, 0.0, node="b")
        bus.emit(POLL_SERVED, 0.0, node="a")
        assert bus.nodes() == ["a", "b"]

    def test_ring_size_must_be_positive(self):
        with pytest.raises(ValueError):
            EventBus(ring_size=0)

    def test_budget_caps_total_retained_memory(self):
        bus = EventBus(ring_size=1024, max_total_events=64)
        for index in range(16):
            for tick in range(100):
                bus.emit(POLL_SERVED, float(tick), node="n%02d" % index)
            # The invariant holds after every component joins, not just
            # at the end: total retained never exceeds the budget.
            assert len(bus) <= 64
        # Each of the 16 rings got the power-of-two floor of 64/16.
        assert all(ring.maxlen == 4 for ring in bus._rings.values())
        # All-time totals are unaffected by the bounded retention.
        assert bus.total(POLL_SERVED) == 1600

    def test_budget_shrinks_rings_as_components_appear(self):
        bus = EventBus(max_total_events=32)
        for tick in range(40):
            bus.emit(POLL_SERVED, float(tick), node="first")
        # Alone, the first component gets the whole budget.
        assert bus.count(node="first") == 32
        for index in range(7):
            bus.emit(MEMBER_JOIN, 0.0, node="late%d" % index)
        # Eight components now share the budget: 32/8 = 4 each, and the
        # first ring was shrunk (newest kept, drop counted as eviction).
        assert bus.count(node="first") == 4
        assert [e.t for e in bus.events(node="first")] == [36.0, 37.0, 38.0, 39.0]
        assert bus.evicted("first") == 8 + 28  # ring overflow + shrink
        assert len(bus) <= 32

    def test_budget_eviction_counts_reach_the_registry(self):
        registry = MetricsRegistry()
        bus = EventBus(max_total_events=4)
        bus.attach_registry(registry)
        for tick in range(10):
            bus.emit(POLL_SERVED, float(tick), node="agent")
        bus.emit(MEMBER_JOIN, 0.0, node="other")  # shrinks agent's ring
        assert registry.gauge("events_evicted", node="agent").value == bus.evicted(
            "agent"
        )

    def test_budget_floors_at_one_event_per_component(self):
        bus = EventBus(max_total_events=2)
        for index in range(10):
            bus.emit(POLL_SERVED, 0.0, node="n%d" % index)
        # More components than budget: degrade to one event each rather
        # than dropping components entirely.
        assert all(ring.maxlen == 1 for ring in bus._rings.values())
        assert bus.count() == 10

    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            EventBus(max_total_events=0)

    def test_jsonl_export_round_trips(self):
        import json

        bus = EventBus()
        bus.emit(POLL_SERVED, 1.0, node="agent", participant="alice")
        lines = events_to_jsonl(bus).strip().split("\n")
        assert len(lines) == 1
        row = json.loads(lines[0])
        assert row["type"] == POLL_SERVED
        assert row["data"] == {"participant": "alice"}


def _build_world():
    sim = Simulator()
    network = Network(sim)
    site = StaticSite("site.com")
    site.add_page(
        "/",
        "<html><head><title>One</title></head><body><p>hello</p></body></html>",
    )
    OriginServer(network, "site.com", site.handle)
    host_pc = Host(network, "host-pc", LAN_PROFILE, segment="campus")
    part_pc = Host(network, "part-pc", LAN_PROFILE, segment="campus")
    return sim, Browser(host_pc, name="bob"), Browser(part_pc, name="alice")


def _run_session(with_events):
    sim, hb, pb = _build_world()
    bus = EventBus() if with_events else None
    session = CoBrowsingSession(hb, events=bus)

    def scenario():
        yield from session.join(pb)
        yield from session.host_navigate("http://site.com/")
        yield from session.wait_until_synced()
        hb.mutate_document(
            lambda doc: setattr(
                doc.get_elements_by_tag_name("p")[0], "inner_html", "changed"
            )
        )
        yield from session.wait_until_synced()
        yield sim.timeout(2)

    sim.run_until_complete(sim.process(scenario()))
    wire = sum(
        link.up.bytes_carried + link.down.bytes_carried
        for link in (hb.host.link, pb.host.link)
    )
    session.close()
    return bus, wire


class TestSessionIntegration:
    def test_session_emits_known_typed_events(self):
        bus, _wire = _run_session(with_events=True)
        types = {event.type for event in bus.events()}
        assert MEMBER_JOIN in types
        assert POLL_SERVED in types
        assert types <= KNOWN_EVENT_TYPES
        served = bus.events(type=POLL_SERVED)
        assert all(event.data.get("bytes", 0) > 0 for event in served)
        # sim-time stamps are monotone in emission order.
        times = [event.t for event in bus.events()]
        assert times == sorted(times)

    def test_disabled_bus_costs_zero_wire_bytes(self):
        _bus, wired = _run_session(with_events=True)
        none_bus, dark = _run_session(with_events=False)
        assert none_bus is None
        assert wired == dark
