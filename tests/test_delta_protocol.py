"""Delta envelopes over the polling protocol: end-to-end tests.

Covers the agent/snippet delta exchange (new <delta> envelope section),
every resync fallback — stale participant, evicted snapshot, mid-stream
``enable_delta`` toggles, corrupted deltas — and a property-style check
that delta-applied participant documents are byte-identical (serialized)
to full-envelope documents across randomized edit sequences.
"""

import json
import random

import pytest

from repro.browser import Browser
from repro.core import (
    CoBrowsingSession,
    NewContent,
    build_envelope,
    content_tree,
    parse_envelope,
)
from repro.html import Element, Text, serialize_node
from repro.net import LAN_PROFILE, Host, Network
from repro.sim import Simulator
from repro.webserver import OriginServer, StaticSite

PAGE = (
    "<html><head><title>Delta test</title><style>p { margin: 0; }</style></head>"
    "<body><h1 id='headline'>News</h1>"
    + "".join("<p id='p%d'>paragraph %d body text</p>" % (i, i) for i in range(20))
    + "<div id='footer'>fin</div></body></html>"
)


def build_world(participants=1, **session_kwargs):
    sim = Simulator()
    network = Network(sim)
    site = StaticSite("site.com")
    site.add_page("/", PAGE)
    OriginServer(network, "site.com", site.handle)
    host_pc = Host(network, "host-pc", LAN_PROFILE, segment="campus")
    host_browser = Browser(host_pc, name="bob")
    session_kwargs.setdefault("poll_interval", 0.2)
    session = CoBrowsingSession(host_browser, **session_kwargs)
    browsers = []
    for index in range(participants):
        pc = Host(network, "part-pc-%d" % index, LAN_PROFILE, segment="campus")
        browsers.append(Browser(pc, name="alice-%d" % index))
    return sim, session, browsers


def run(sim, generator):
    return sim.run_until_complete(sim.process(generator))


def participant_canonical(browser):
    """The participant document, serialized, minus Ajax-Snippet's script."""
    html = browser.page.document.document_element.clone(deep=True)
    head = [c for c in html.children if c.tag == "head"][0]
    for node in list(head.children):
        if node.tag == "script" and node.get_attribute("id") == "ajax-snippet":
            head.remove_child(node)
    return serialize_node(html)


def agent_canonical(agent, participant_id):
    """What a full envelope would currently give this participant."""
    xml = agent._ensure_generated(participant_id)
    return serialize_node(content_tree(parse_envelope(xml)))


def edit_paragraph(browser, index, text):
    def mutate(document):
        target = document.get_element_by_id("p%d" % index)
        target.remove_all_children()
        target.append_child(Text(text))

    browser.mutate_document(mutate)


class TestDeltaExchange:
    def test_small_edit_travels_as_delta(self):
        sim, session, (alice,) = build_world()

        def scenario():
            snippet = yield from session.join(alice)
            yield from session.host_navigate("http://site.com/")
            yield from session.wait_until_synced()
            edit_paragraph(session.host_browser, 3, "breaking news")
            yield from session.wait_until_synced()
            return snippet

        snippet = run(sim, scenario())
        assert session.agent.stats["delta_responses"] == 1
        assert snippet.stats.delta_updates == 1
        assert snippet.stats.delta_failures == 0
        assert participant_canonical(alice) == agent_canonical(
            session.agent, snippet.participant_id
        )
        assert "breaking news" in participant_canonical(alice)

    def test_delta_is_much_smaller_than_full(self):
        sim, session, (alice,) = build_world()

        def scenario():
            yield from session.join(alice)
            yield from session.host_navigate("http://site.com/")
            yield from session.wait_until_synced()
            edit_paragraph(session.host_browser, 0, "tiny edit")
            yield from session.wait_until_synced()

        run(sim, scenario())
        stats = session.agent.stats
        assert stats["delta_responses"] == 1
        full_equivalent = stats["delta_bytes_sent"] + stats["delta_bytes_saved"]
        assert full_equivalent >= 5 * stats["delta_bytes_sent"]

    def test_disabled_delta_always_sends_full(self):
        sim, session, (alice,) = build_world(enable_delta=False)

        def scenario():
            yield from session.join(alice)
            yield from session.host_navigate("http://site.com/")
            yield from session.wait_until_synced()
            edit_paragraph(session.host_browser, 1, "no deltas here")
            yield from session.wait_until_synced()

        run(sim, scenario())
        assert session.agent.stats["delta_responses"] == 0
        assert session.agent.stats["full_responses"] == 2
        assert participant_canonical(alice) == agent_canonical(session.agent, "alice-0")

    def test_coalesced_delta_spans_multiple_edits(self):
        """Several host edits between two polls arrive as one delta
        against the participant's older (but still retained) snapshot.

        Coalescing-between-polls only exists under interval polling —
        a held transport releases on the first edit — so the transport
        is pinned to "poll" regardless of any forced RCB_TRANSPORT.
        """
        sim, session, (alice,) = build_world(poll_interval=5.0, transport="poll")

        def scenario():
            snippet = yield from session.join(alice)
            yield from session.host_navigate("http://site.com/")
            yield from session.wait_until_synced()
            for index in range(3):
                edit_paragraph(session.host_browser, index, "multi %d" % index)
                yield sim.timeout(0.01)
            yield from session.wait_until_synced(timeout=30)
            return snippet

        snippet = run(sim, scenario())
        assert snippet.stats.delta_updates == 1
        assert participant_canonical(alice) == agent_canonical(
            session.agent, snippet.participant_id
        )

    def test_actions_piggyback_on_delta_envelopes(self):
        from repro.core import MouseMoveAction

        sim, session, (alice,) = build_world()

        def scenario():
            snippet = yield from session.join(alice)
            yield from session.host_navigate("http://site.com/")
            yield from session.wait_until_synced()
            session.agent.broadcast_action(MouseMoveAction(5, 7))
            edit_paragraph(session.host_browser, 2, "with actions")
            yield from session.wait_until_synced()
            return snippet

        snippet = run(sim, scenario())
        assert session.agent.stats["delta_responses"] == 1
        assert any(
            getattr(action, "x", None) == 5 for action in snippet.stats.actions_received
        )


class TestResyncFallbacks:
    def test_evicted_snapshot_falls_back_to_full(self):
        sim, session, (alice, carol) = build_world(participants=2)
        session.agent.delta_history = 2

        def scenario():
            lazy = yield from session.join(carol)
            busy = yield from session.join(alice)
            yield from session.host_navigate("http://site.com/")
            yield from session.wait_until_synced()
            lazy.disconnect()  # stops polling; keeps its document state
            for index in range(4):
                edit_paragraph(session.host_browser, index, "round %d" % index)
                yield from session.wait_until_synced(busy)
            # The lazy participant's base state has been evicted from the
            # two-entry ring by now; its next poll must get a full envelope.
            fallbacks_before = session.agent.stats["delta_fallbacks"]
            yield from lazy.poll_once()
            return lazy, busy, fallbacks_before

        lazy, busy, fallbacks_before = run(sim, scenario())
        assert session.agent.stats["delta_fallbacks"] == fallbacks_before + 1
        assert lazy.stats.delta_failures == 0
        assert lazy.last_doc_time == session.agent.doc_time
        assert participant_canonical(carol) == agent_canonical(
            session.agent, lazy.participant_id
        )

    def test_stale_participant_converges_via_full(self):
        """A participant that reports a timestamp the agent never
        generated (e.g. it re-joined) is answered with a full envelope.

        The stale timestamp is injected between polls, which requires
        interval polling — under a held transport the in-flight poll
        already carries the real timestamp — so the mode is pinned.
        """
        sim, session, (alice,) = build_world(transport="poll")

        def scenario():
            snippet = yield from session.join(alice)
            yield from session.host_navigate("http://site.com/")
            yield from session.wait_until_synced()
            snippet.last_doc_time = 7  # a doc_time the agent never saw
            edit_paragraph(session.host_browser, 4, "post-stale")
            yield from session.wait_until_synced()
            return snippet

        snippet = run(sim, scenario())
        assert session.agent.stats["delta_fallbacks"] >= 1
        assert participant_canonical(alice) == agent_canonical(
            session.agent, snippet.participant_id
        )

    def test_midstream_toggle_converges_both_ways(self):
        sim, session, (alice,) = build_world()
        states = []

        def checkpoint(snippet):
            states.append(
                participant_canonical(alice)
                == agent_canonical(session.agent, snippet.participant_id)
            )

        def scenario():
            snippet = yield from session.join(alice)
            yield from session.host_navigate("http://site.com/")
            yield from session.wait_until_synced()
            edit_paragraph(session.host_browser, 0, "delta on")
            yield from session.wait_until_synced()
            checkpoint(snippet)
            session.agent.enable_delta = False
            edit_paragraph(session.host_browser, 1, "delta off")
            yield from session.wait_until_synced()
            checkpoint(snippet)
            session.agent.enable_delta = True
            edit_paragraph(session.host_browser, 2, "delta back on")
            yield from session.wait_until_synced()
            checkpoint(snippet)
            edit_paragraph(session.host_browser, 3, "delta warm again")
            yield from session.wait_until_synced()
            checkpoint(snippet)
            return snippet

        snippet = run(sim, scenario())
        assert states == [True, True, True, True]
        assert snippet.stats.delta_failures == 0
        # The first post-re-enable edit lacks a base snapshot (generated
        # while deltas were off) and goes full; the next one is a delta.
        assert session.agent.stats["delta_responses"] >= 2

    def test_corrupted_delta_forces_resync(self):
        sim, session, (alice,) = build_world()

        def scenario():
            snippet = yield from session.join(alice)
            yield from session.host_navigate("http://site.com/")
            yield from session.wait_until_synced()
            bogus = build_envelope(
                NewContent(
                    snippet.last_doc_time + 500,
                    base_time=snippet.last_doc_time,
                    delta_ops_json=json.dumps(
                        [{"op": "remove", "sec": "body", "path": [99]}]
                    ),
                )
            )
            yield from snippet._process_response(bogus, sim.now)
            assert snippet.stats.delta_failures == 1
            assert snippet.last_doc_time == 0  # resync requested
            # The next regular poll repairs the document with a full envelope.
            yield from snippet.poll_once()
            return snippet

        snippet = run(sim, scenario())
        assert snippet.last_doc_time == session.agent.doc_time
        assert participant_canonical(alice) == agent_canonical(
            session.agent, snippet.participant_id
        )

    def test_base_time_mismatch_forces_resync(self):
        sim, session, (alice,) = build_world()

        def scenario():
            snippet = yield from session.join(alice)
            yield from session.host_navigate("http://site.com/")
            yield from session.wait_until_synced()
            stale = build_envelope(
                NewContent(
                    snippet.last_doc_time + 500,
                    base_time=snippet.last_doc_time - 3,
                    delta_ops_json="[]",
                )
            )
            yield from snippet._process_response(stale, sim.now)
            return snippet

        snippet = run(sim, scenario())
        assert snippet.stats.delta_failures == 1
        assert snippet.last_doc_time == 0


class TestDeltaEnvelopeFormat:
    def test_delta_envelope_roundtrip(self):
        ops = [{"op": "text", "sec": "body", "path": [0, 0], "data": "new & <shiny>"}]
        content = NewContent(42, base_time=17, delta_ops_json=json.dumps(ops))
        parsed = parse_envelope(build_envelope(content))
        assert parsed == content
        assert parsed.is_delta
        assert parsed.base_time == 17
        assert json.loads(parsed.delta_ops_json) == ops

    def test_delta_without_base_time_rejected(self):
        from repro.core import EnvelopeError

        with pytest.raises(EnvelopeError):
            NewContent(42, delta_ops_json="[]")

    def test_parse_rejects_delta_missing_base_time(self):
        from repro.core import EnvelopeError

        text = (
            "<?xml version='1.0' encoding='utf-8'?><newContent>"
            "<docTime>9</docTime><delta><![CDATA[%5B%5D]]></delta>"
            "<userActions><![CDATA[%5B%5D]]></userActions></newContent>"
        )
        with pytest.raises(EnvelopeError):
            parse_envelope(text)

    def test_full_envelope_unaffected(self):
        content = NewContent(7)
        parsed = parse_envelope(build_envelope(content))
        assert not parsed.is_delta
        assert parsed.base_time is None


class TestRandomizedEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_delta_documents_match_full_documents(self, seed):
        """Property-style end-to-end check: across a randomized edit
        sequence, the delta-updated participant document serializes
        byte-identically to the full-envelope reconstruction."""
        rng = random.Random(seed)
        sim, session, (alice,) = build_world()

        def random_edit(document):
            roll = rng.random()
            body = document.body
            paragraphs = [e for e in body.children if e.tag == "p"]
            if roll < 0.4 and paragraphs:
                target = rng.choice(paragraphs)
                target.remove_all_children()
                target.append_child(Text("edit %d" % rng.randrange(10000)))
            elif roll < 0.6 and paragraphs:
                rng.choice(paragraphs).set_attribute(
                    "data-rev", str(rng.randrange(10000))
                )
            elif roll < 0.8:
                fresh = Element("p", {"id": "new%d" % rng.randrange(10000)})
                fresh.append_child(Text("inserted %d" % rng.randrange(10000)))
                siblings = body.children
                body.insert_before(fresh, rng.choice(siblings) if siblings else None)
            elif len(paragraphs) > 1:
                body.remove_child(rng.choice(paragraphs))

        def scenario():
            snippet = yield from session.join(alice)
            yield from session.host_navigate("http://site.com/")
            yield from session.wait_until_synced()
            mismatches = []
            for _ in range(10):
                session.host_browser.mutate_document(random_edit)
                yield from session.wait_until_synced(timeout=30)
                if participant_canonical(alice) != agent_canonical(
                    session.agent, snippet.participant_id
                ):
                    mismatches.append(session.agent.doc_time)
            return snippet, mismatches

        snippet, mismatches = run(sim, scenario())
        assert mismatches == []
        assert snippet.stats.delta_failures == 0
        # The whole sequence should ride the delta path.
        assert snippet.stats.delta_updates >= 8
