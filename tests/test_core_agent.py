"""Tests for RCB-Agent request processing (paper Fig. 2)."""

import json

import pytest

from repro.browser import Browser
from repro.core import (
    ClickAction,
    ConfirmPolicy,
    MouseMoveAction,
    ObserveOnlyPolicy,
    RCBAgent,
    TOPIC_ROSTER_CHANGED,
    parse_envelope,
    sign_request_target,
)
from repro.http import HttpClient
from repro.net import LAN_PROFILE, Host, Network
from repro.sim import Simulator
from repro.webserver import OriginServer, StaticSite


def build_world(agent_kwargs=None):
    sim = Simulator()
    network = Network(sim)
    site = StaticSite("site.com")
    site.add_page(
        "/",
        "<html><head><title>Host page</title></head>"
        '<body><img src="/pic.png"><form action="/go" method="POST">'
        '<input type="text" name="f"></form></body></html>',
    )
    site.add("/pic.png", "image/png", b"\x89PNG" + b"p" * 2000)
    OriginServer(network, "site.com", site.handle)
    host_pc = Host(network, "host-pc", LAN_PROFILE, segment="campus")
    part_pc = Host(network, "part-pc", LAN_PROFILE, segment="campus")
    host_browser = Browser(host_pc, name="bob")
    agent = RCBAgent(**(agent_kwargs or {}))
    agent.install(host_browser)
    client = HttpClient(part_pc)
    return sim, host_browser, agent, client


def run(sim, generator):
    return sim.run_until_complete(sim.process(generator))


def poll_body(participant="alice", timestamp=0, actions=()):
    return json.dumps(
        {"participant": participant, "timestamp": timestamp, "actions": [a.to_dict() for a in actions]}
    ).encode()


class TestRequestClassification:
    def test_new_connection_request_returns_initial_page(self):
        sim, _hb, _agent, client = build_world()

        def scenario():
            return (yield from client.get("http://host-pc:3000/"))

        response = run(sim, scenario())
        assert response.status == 200
        assert response.content_type == "text/html"
        assert 'id="ajax-snippet"' in response.text()

    def test_unknown_path_404(self):
        sim, _hb, _agent, client = build_world()

        def scenario():
            return (yield from client.get("http://host-pc:3000/nothing"))

        assert run(sim, scenario()).status == 404

    def test_get_poll_is_not_a_poll(self):
        sim, _hb, _agent, client = build_world()

        def scenario():
            return (yield from client.get("http://host-pc:3000/poll"))

        assert run(sim, scenario()).status == 404

    def test_poll_with_no_page_is_empty(self):
        sim, _hb, agent, client = build_world()

        def scenario():
            response = yield from client.post(
                "http://host-pc:3000/poll", poll_body(), content_type="application/json"
            )
            return response

        response = run(sim, scenario())
        assert response.status == 200
        assert response.body == b""
        assert agent.stats["empty_responses"] == 1

    def test_poll_after_host_navigation_returns_envelope(self):
        sim, host_browser, agent, client = build_world()

        def scenario():
            yield from host_browser.navigate("http://site.com/")
            response = yield from client.post(
                "http://host-pc:3000/poll", poll_body(), content_type="application/json"
            )
            return response

        response = run(sim, scenario())
        assert response.content_type == "application/xml"
        content = parse_envelope(response.text())
        assert content.doc_time == agent.doc_time
        assert any("Host page" in c.inner_html for c in content.head_children)

    def test_poll_with_current_timestamp_is_empty(self):
        sim, host_browser, agent, client = build_world()

        def scenario():
            yield from host_browser.navigate("http://site.com/")
            first = yield from client.post(
                "http://host-pc:3000/poll", poll_body(), content_type="application/json"
            )
            content = parse_envelope(first.text())
            second = yield from client.post(
                "http://host-pc:3000/poll",
                poll_body(timestamp=content.doc_time),
                content_type="application/json",
            )
            return second

        assert run(sim, scenario()).body == b""

    def test_bad_poll_body_400(self):
        sim, _hb, _agent, client = build_world()

        def scenario():
            return (
                yield from client.post(
                    "http://host-pc:3000/poll", b"{bad json", content_type="application/json"
                )
            )

        assert run(sim, scenario()).status == 400


class TestCacheModeObjects:
    def test_object_served_from_host_cache(self):
        sim, host_browser, agent, client = build_world()

        def scenario():
            yield from host_browser.navigate("http://site.com/")
            poll = yield from client.post(
                "http://host-pc:3000/poll", poll_body(), content_type="application/json"
            )
            content = parse_envelope(poll.text())
            body_html = content.top_elements[0].inner_html
            start = body_html.index("/obj?key=")
            end = body_html.index('"', start)
            target = body_html[start:end].replace("&amp;", "&")
            response = yield from client.get("http://host-pc:3000" + target)
            return response

        response = run(sim, scenario())
        assert response.status == 200
        assert response.content_type == "image/png"
        assert response.body.startswith(b"\x89PNG")
        assert agent.stats["object_requests"] == 1

    def test_uncached_object_404(self):
        sim, host_browser, _agent, client = build_world()

        def scenario():
            yield from host_browser.navigate("http://site.com/")
            return (
                yield from client.get(
                    "http://host-pc:3000/obj?key=http%3A%2F%2Fsite.com%2Fghost.png"
                )
            )

        assert run(sim, scenario()).status == 404

    def test_non_cache_mode_keeps_origin_urls(self):
        sim, host_browser, _agent, client = build_world({"cache_mode": False})

        def scenario():
            yield from host_browser.navigate("http://site.com/")
            poll = yield from client.post(
                "http://host-pc:3000/poll", poll_body(), content_type="application/json"
            )
            return parse_envelope(poll.text())

        content = run(sim, scenario())
        assert "/obj?key=" not in content.top_elements[0].inner_html
        assert "http://site.com/pic.png" in content.top_elements[0].inner_html


class TestAuthentication:
    SECRET = "shared-key-123"

    def test_unsigned_poll_rejected(self):
        sim, host_browser, agent, client = build_world({"secret": SECRET_VALUE})

        def scenario():
            yield from host_browser.navigate("http://site.com/")
            return (
                yield from client.post(
                    "http://host-pc:3000/poll", poll_body(), content_type="application/json"
                )
            )

        assert run(sim, scenario()).status == 401
        assert agent.stats["auth_failures"] == 1

    def test_signed_poll_accepted(self):
        sim, host_browser, _agent, client = build_world({"secret": SECRET_VALUE})

        def scenario():
            yield from host_browser.navigate("http://site.com/")
            body = poll_body()
            target = sign_request_target(SECRET_VALUE, "POST", "/poll", body)
            return (
                yield from client.post(
                    "http://host-pc:3000" + target, body, content_type="application/json"
                )
            )

        response = run(sim, scenario())
        assert response.status == 200
        assert response.content_type == "application/xml"

    def test_initial_page_needs_no_signature(self):
        sim, _hb, _agent, client = build_world({"secret": SECRET_VALUE})

        def scenario():
            return (yield from client.get("http://host-pc:3000/"))

        response = run(sim, scenario())
        assert response.status == 200
        assert "secret key" in response.text()

    def test_object_requests_carry_host_signed_urls(self):
        sim, host_browser, _agent, client = build_world({"secret": SECRET_VALUE})

        def scenario():
            yield from host_browser.navigate("http://site.com/")
            body = poll_body()
            target = sign_request_target(SECRET_VALUE, "POST", "/poll", body)
            poll = yield from client.post(
                "http://host-pc:3000" + target, body, content_type="application/json"
            )
            content = parse_envelope(poll.text())
            body_html = content.top_elements[0].inner_html
            start = body_html.index("/obj?key=")
            end = body_html.index('"', start)
            signed_target = body_html[start:end].replace("&amp;", "&")
            return (yield from client.get("http://host-pc:3000" + signed_target))

        assert run(sim, scenario()).status == 200


SECRET_VALUE = TestAuthentication.SECRET


class TestModeration:
    def test_observe_only_drops_actions(self):
        sim, host_browser, agent, client = build_world({"policy": ObserveOnlyPolicy()})

        def scenario():
            yield from host_browser.navigate("http://site.com/")
            action = ClickAction("a:0")
            yield from client.post(
                "http://host-pc:3000/poll",
                poll_body(actions=[action]),
                content_type="application/json",
            )

        run(sim, scenario())
        assert agent.stats["actions_dropped"] == 1
        assert agent.stats["actions_applied"] == 0

    def test_confirm_policy_holds_then_applies(self):
        sim, host_browser, agent, client = build_world({"policy": ConfirmPolicy()})

        def scenario():
            yield from host_browser.navigate("http://site.com/")
            from repro.core import FormFillAction

            action = FormFillAction("form:0", {"f": "from-alice"})
            yield from client.post(
                "http://host-pc:3000/poll",
                poll_body(actions=[action]),
                content_type="application/json",
            )
            held = len(agent.pending_actions)
            applied = yield from agent.confirm_pending()
            return held, applied

        held, applied = run(sim, scenario())
        assert (held, applied) == (1, 1)
        form = host_browser.page.document.get_elements_by_tag_name("form")[0]
        field = form.get_elements_by_tag_name("input")[0]
        assert field.get_attribute("value") == "from-alice"

    def test_confirm_policy_mousemove_auto_applied(self):
        sim, host_browser, agent, client = build_world({"policy": ConfirmPolicy()})

        def scenario():
            yield from host_browser.navigate("http://site.com/")
            yield from client.post(
                "http://host-pc:3000/poll",
                poll_body(actions=[MouseMoveAction(5, 6)]),
                content_type="application/json",
            )

        run(sim, scenario())
        assert agent.stats["actions_applied"] == 1
        assert agent.pending_actions == []

    def test_reject_pending(self):
        sim, host_browser, agent, client = build_world({"policy": ConfirmPolicy()})

        def scenario():
            yield from host_browser.navigate("http://site.com/")
            yield from client.post(
                "http://host-pc:3000/poll",
                poll_body(actions=[ClickAction("a:0")]),
                content_type="application/json",
            )

        run(sim, scenario())
        assert agent.reject_pending() == 1
        assert agent.pending_actions == []


class TestRosterAndReuse:
    def test_roster_tracks_participants(self):
        sim, host_browser, agent, client = build_world()
        events = []
        host_browser.observers.add_observer(TOPIC_ROSTER_CHANGED, lambda t, p: events.append(p))

        def scenario():
            yield from client.post(
                "http://host-pc:3000/poll", poll_body("alice"), content_type="application/json"
            )
            yield from client.post(
                "http://host-pc:3000/poll", poll_body("carol"), content_type="application/json"
            )

        run(sim, scenario())
        assert agent.roster() == ["alice", "carol"]
        assert events == [["alice"], ["alice", "carol"]]
        agent.disconnect("alice")
        assert agent.roster() == ["carol"]

    def test_content_generated_once_for_many_participants(self):
        sim, host_browser, agent, client = build_world()

        def scenario():
            yield from host_browser.navigate("http://site.com/")
            for name in ("p1", "p2", "p3", "p4"):
                yield from client.post(
                    "http://host-pc:3000/poll", poll_body(name), content_type="application/json"
                )

        run(sim, scenario())
        assert agent.stats["content_responses"] == 4
        assert agent.generation_count == 1

    def test_regeneration_after_dom_change(self):
        sim, host_browser, agent, client = build_world()

        def scenario():
            yield from host_browser.navigate("http://site.com/")
            yield from client.post(
                "http://host-pc:3000/poll", poll_body("p1"), content_type="application/json"
            )
            host_browser.mutate_document(
                lambda doc: doc.body.append_child(doc.create_element("div", id="x"))
            )
            yield from client.post(
                "http://host-pc:3000/poll", poll_body("p1", timestamp=agent.doc_time - 1),
                content_type="application/json",
            )

        run(sim, scenario())
        assert agent.generation_count == 2

    def test_agent_url(self):
        _sim, _hb, agent, _client = build_world()
        assert agent.url == "http://host-pc:3000/"

    def test_uninstall_closes_port(self):
        sim, host_browser, agent, client = build_world()
        agent.uninstall()

        def scenario():
            from repro.http import RequestFailed

            with pytest.raises(RequestFailed):
                yield from client.get("http://host-pc:3000/")
            return "done"

        assert run(sim, scenario()) == "done"
