"""The fleet telemetry plane's data model: sketches, digests, reporters.

Covers the mergeable-digest tentpole at the unit level: log-bucket
sketch exactness and percentile clamping, member-delta and digest merge
conservation, the three fold-under-cap encoding levels, wire round
trips, and the ClientTelemetry commit/rollback protocol that makes
``host totals + Σ unreported == Σ locals`` an exact identity.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs import (
    FOLDED_ID,
    ClientTelemetry,
    LogBucketSketch,
    MemberDelta,
    TelemetryDigest,
    encoded_bytes,
)


def sketch_of(*values):
    sketch = LogBucketSketch()
    for value in values:
        sketch.record(value)
    return sketch


class TestLogBucketSketch:
    def test_empty_sketch(self):
        sketch = LogBucketSketch()
        assert sketch.count == 0
        assert sketch.percentile(95) == 0.0
        assert sketch.mean == 0.0
        assert sketch.to_dict() is None

    def test_exact_aggregates(self):
        sketch = sketch_of(0, 1, 5, 100, 1000)
        assert sketch.count == 5
        assert sketch.total == 1106
        assert sketch.min_value == 0
        assert sketch.max_value == 1000
        assert sketch.mean == pytest.approx(221.2)

    def test_bucket_layout_is_bit_length(self):
        # Bucket 0 holds the value 0; bucket b holds [2^(b-1), 2^b).
        sketch = sketch_of(0, 1, 2, 3, 4, 7, 8)
        assert sketch.buckets == {0: 1, 1: 1, 2: 2, 3: 2, 4: 1}

    def test_negative_values_clamp_to_zero(self):
        sketch = sketch_of(-5)
        assert sketch.min_value == 0
        assert sketch.buckets == {0: 1}

    def test_bounded_size_regardless_of_samples(self):
        sketch = LogBucketSketch()
        for value in range(10000):
            sketch.record(value)
        assert len(sketch.buckets) <= 15  # log2(10000) + the zero bucket
        assert sketch.count == 10000

    def test_percentile_clamped_into_exact_envelope(self):
        # The geometric-midpoint estimate can never leave [min, max].
        sketch = sketch_of(900, 901, 902)
        for q in (1, 50, 95, 100):
            assert 900 <= sketch.percentile(q) <= 902

    def test_percentile_orders_buckets(self):
        sketch = sketch_of(*([1] * 95), *([1000] * 5))
        assert sketch.percentile(50) < 2.0  # low ranks stay in bucket 1
        assert sketch.percentile(99) >= 512.0

    def test_merge_is_per_bucket_addition(self):
        a = sketch_of(1, 100)
        b = sketch_of(100, 10000)
        a.merge(b)
        assert a.count == 4
        assert a.total == 10201
        assert (a.min_value, a.max_value) == (1, 10000)
        assert a.buckets[7] == 2  # both 100s share bucket 7

    def test_merge_with_empty_both_ways(self):
        a = sketch_of(5)
        a.merge(LogBucketSketch())
        assert a == sketch_of(5)
        b = LogBucketSketch()
        b.merge(sketch_of(5))
        assert b == sketch_of(5)

    def test_round_trip(self):
        sketch = sketch_of(0, 3, 900, 70000)
        assert LogBucketSketch.from_dict(sketch.to_dict()) == sketch

    def test_bucketless_record_keeps_exact_aggregates(self):
        sketch = sketch_of(3, 900)
        record = sketch.to_dict(include_buckets=False)
        assert "b" not in record
        revived = LogBucketSketch.from_dict(record)
        assert revived.count == 2
        assert revived.total == 903
        assert (revived.min_value, revived.max_value) == (3, 900)

    def test_from_dict_tolerates_junk(self):
        assert LogBucketSketch.from_dict(None).count == 0
        assert LogBucketSketch.from_dict("nope").count == 0

    @settings(max_examples=60, deadline=None)
    @given(
        left=st.lists(st.integers(0, 2**40), max_size=30),
        right=st.lists(st.integers(0, 2**40), max_size=30),
    )
    def test_merge_commutes(self, left, right):
        ab = sketch_of(*left).merge(sketch_of(*right))
        ba = sketch_of(*right).merge(sketch_of(*left))
        assert ab == ba

    @settings(max_examples=60, deadline=None)
    @given(values=st.lists(st.integers(0, 2**40), min_size=1, max_size=30))
    def test_round_trip_property(self, values):
        sketch = sketch_of(*values)
        assert LogBucketSketch.from_dict(sketch.to_dict()) == sketch


class TestMemberDelta:
    def test_bump_and_empty(self):
        delta = MemberDelta("m1")
        assert delta.is_empty
        delta.bump("polls")
        delta.bump("bytes_seen", 512)
        assert not delta.is_empty
        assert delta.counters["polls"] == 1
        assert delta.counters["bytes_seen"] == 512

    def test_merge_from_sums_everything(self):
        a = MemberDelta("m1")
        a.bump("polls", 2)
        a.mode_polls["poll"] = 2
        a.staleness.record(100)
        b = MemberDelta("m1")
        b.bump("polls", 3)
        b.mode_polls["push"] = 3
        b.staleness.record(300)
        a.merge_from(b)
        assert a.counters["polls"] == 5
        assert a.mode_polls == {"poll": 2, "push": 3}
        assert a.staleness.count == 2
        assert a.weight == 2

    def test_round_trip(self):
        delta = MemberDelta("m1")
        delta.bump("content_updates", 4)
        delta.bump("delta_updates", 3)
        delta.mode_polls["longpoll"] = 9
        delta.apply.record(250)
        delta.staleness.record(42)
        revived = MemberDelta.from_dict(delta.to_dict())
        assert revived.member_id == "m1"
        assert revived.counters["content_updates"] == 4
        assert revived.mode_polls == {"longpoll": 9}
        assert revived.apply == delta.apply
        assert revived.staleness == delta.staleness

    def test_zero_counters_stay_off_the_wire(self):
        delta = MemberDelta("m1")
        delta.bump("polls")
        record = delta.to_dict()
        assert record["c"] == {"polls": 1}
        assert "w" not in record  # weight 1 is implicit

    def test_from_dict_rejects_junk(self):
        with pytest.raises(ValueError):
            MemberDelta.from_dict("nope")
        with pytest.raises(ValueError):
            MemberDelta.from_dict({"c": {"polls": 1}})  # no id


def build_digest(members=3, polls=5):
    digest = TelemetryDigest()
    for index in range(members):
        delta = digest.member("member-%02d" % index)
        delta.bump("polls", polls)
        delta.bump("bytes_seen", 100 * (index + 1))
        delta.staleness.record(50 * (index + 1))
        delta.apply.record(10 * (index + 1))
        delta.mode_polls["poll"] = polls
    return digest


class TestTelemetryDigest:
    def test_merge_conserves_totals(self):
        a = build_digest(3)
        b = build_digest(2)  # overlapping ids: deltas must sum
        expected_polls = a.totals().counters["polls"] + b.totals().counters["polls"]
        a.merge(b)
        assert a.totals().counters["polls"] == expected_polls
        assert a.member("member-00").counters["polls"] == 10

    def test_fold_conserves_and_counts_weight(self):
        digest = build_digest(5)
        before = digest.totals()
        folded = digest.fold()
        assert list(folded.members) == [FOLDED_ID]
        after = folded.members[FOLDED_ID]
        assert after.counters == before.counters
        assert after.staleness == before.staleness
        assert after.weight == 5

    def test_encode_uncapped_keeps_member_identity(self):
        digest = build_digest(3)
        blob = digest.encode()
        ids = [record["id"] for record in blob["members"]]
        assert ids == ["member-00", "member-01", "member-02"]

    def test_encode_folds_under_cap(self):
        digest = build_digest(40)
        full_size = encoded_bytes(digest.encode())
        cap = full_size // 4
        blob = digest.encode(byte_cap=cap)
        assert encoded_bytes(blob) <= cap
        (record,) = blob["members"]
        assert record["id"] == FOLDED_ID
        assert record["w"] == 40
        # Counters conserve exactly through the fold.
        assert record["c"]["polls"] == digest.totals().counters["polls"]

    def test_encode_drops_buckets_at_the_deepest_fold(self):
        digest = build_digest(40)
        folded = digest.fold()
        with_buckets = encoded_bytes(
            folded._encode(folded.members.values(), include_buckets=True)
        )
        blob = digest.encode(byte_cap=with_buckets - 1)
        (record,) = blob["members"]
        assert record["id"] == FOLDED_ID
        assert "b" not in record["s"]
        assert record["s"]["n"] == 40  # exact count still conserves

    def test_decode_round_trip(self):
        digest = build_digest(3)
        revived = TelemetryDigest.decode(digest.encode())
        assert revived.totals().counters == digest.totals().counters
        assert revived.totals().staleness == digest.totals().staleness

    def test_decode_rejects_malformed(self):
        with pytest.raises(ValueError):
            TelemetryDigest.decode("nope")
        with pytest.raises(ValueError):
            TelemetryDigest.decode({"v": 99, "members": []})
        with pytest.raises(ValueError):
            TelemetryDigest.decode({"v": 1})

    @settings(max_examples=40, deadline=None)
    @given(
        polls=st.lists(st.integers(0, 1000), min_size=1, max_size=12),
        cap=st.one_of(st.none(), st.integers(40, 4000)),
    )
    def test_encode_decode_conserves_counters(self, polls, cap):
        digest = TelemetryDigest()
        for index, count in enumerate(polls):
            delta = digest.member("m%d" % index)
            delta.bump("polls", count)
            delta.staleness.record(count)
        blob = digest.encode(byte_cap=cap)
        revived = TelemetryDigest.decode(blob)
        assert revived.totals().counters["polls"] == sum(polls)
        assert revived.totals().staleness.count == len(polls)


class TestClientTelemetry:
    def test_idle_reporter_ships_nothing(self):
        reporter = ClientTelemetry("m1")
        assert reporter.snapshot() is None

    def test_commit_clears_unreported(self):
        reporter = ClientTelemetry("m1")
        reporter.record_poll(256, "poll")
        token, blob = reporter.snapshot()
        assert blob["members"][0]["id"] == "m1"
        assert reporter.in_flight == 1
        reporter.commit(token)
        assert reporter.in_flight == 0
        assert reporter.unreported().is_empty
        # The all-time ledger survives the commit.
        assert reporter.local.counters["polls"] == 1

    def test_rollback_rides_the_next_poll(self):
        reporter = ClientTelemetry("m1")
        reporter.record_poll(256, "poll")
        token, _blob = reporter.snapshot()
        reporter.rollback(token)
        assert reporter.in_flight == 0
        token2, blob2 = reporter.snapshot()
        assert token2 != token
        assert blob2["members"][0]["c"]["polls"] == 1

    def test_concurrent_in_flight_snapshots(self):
        # A dedicated action flush can race a parked long poll: both
        # snapshots stay accounted until their own response arrives.
        reporter = ClientTelemetry("m1")
        reporter.record_poll(100, "longpoll")
        token_a, _ = reporter.snapshot()
        reporter.record_poll(200, "longpoll")
        token_b, _ = reporter.snapshot()
        assert reporter.in_flight == 2
        assert reporter.unreported().totals().counters["polls"] == 2
        reporter.commit(token_b)
        reporter.rollback(token_a)
        assert reporter.unreported().totals().counters["polls"] == 1

    def test_record_apply_units(self):
        reporter = ClientTelemetry("m1")
        reporter.record_apply(1500, 0.002, delta=True)
        own = reporter.pending.member("m1")
        assert own.counters["content_updates"] == 1
        assert own.counters["delta_updates"] == 1
        assert own.staleness.max_value == 1500  # milliseconds
        assert own.apply.max_value == 2000  # microseconds

    def test_resync_and_connection_error_counters(self):
        reporter = ClientTelemetry("m1")
        reporter.record_resync()
        reporter.record_connection_error()
        own = reporter.pending.member("m1")
        assert own.counters["resyncs"] == 1
        assert own.counters["connection_errors"] == 1

    def test_relay_sink_merges_children_into_next_snapshot(self):
        child = ClientTelemetry("leaf")
        child.record_poll(64, "poll")
        token, blob = child.snapshot()
        relay = ClientTelemetry("relay-1")
        relay.record_poll(128, "poll")
        relay.ingest(blob, t=1.0)
        child.commit(token)
        _token, merged = relay.snapshot()
        ids = sorted(record["id"] for record in merged["members"])
        assert ids == ["leaf", "relay-1"]

    def test_ingest_counts_malformed_blobs(self):
        relay = ClientTelemetry("relay-1")
        relay.ingest({"v": 42})
        relay.ingest("garbage")
        assert relay.ingest_errors == 2
        assert relay.pending.is_empty

    def test_snapshot_honours_byte_cap(self):
        relay = ClientTelemetry("relay-1", byte_cap=160)
        for index in range(30):
            child = ClientTelemetry("leaf-%02d" % index)
            child.record_poll(100, "poll")
            _t, blob = child.snapshot()
            relay.ingest(blob)
        _token, merged = relay.snapshot()
        assert encoded_bytes(merged) <= 160
        (record,) = merged["members"]
        assert record["id"] == FOLDED_ID

    @settings(max_examples=40, deadline=None)
    @given(
        outcomes=st.lists(st.sampled_from(["ok", "fail", "skip"]), max_size=20)
    )
    def test_conservation_identity_under_failures(self, outcomes):
        # However commits and rollbacks interleave, nothing recorded is
        # ever double-counted or lost before its commit:
        #   committed + unreported == local ledger.
        reporter = ClientTelemetry("m1")
        committed = TelemetryDigest()
        for outcome in outcomes:
            reporter.record_poll(10, "poll")
            if outcome == "skip":
                continue  # poll without a snapshot (telemetry parked)
            snap = reporter.snapshot()
            if snap is None:
                continue
            token, blob = snap
            if outcome == "ok":
                committed.merge(TelemetryDigest.decode(blob))
                reporter.commit(token)
            else:
                reporter.rollback(token)
        observed = committed.totals().counters["polls"] + reporter.unreported().totals().counters.get("polls", 0)
        assert observed == reporter.local.counters["polls"]
