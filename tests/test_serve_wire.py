"""Zero-copy wire path: WirePlan mechanics and batched-serve identity.

The tentpole invariant: with ``enable_batched_serve`` on, the agent
serves poll bodies assembled from shared pre-encoded buffers — and the
bytes on the wire are *identical* to the legacy per-member str path,
for every mix of full/delta envelopes, userActions payloads, cookies,
and fallbacks.  These are the fixed regression cases; the random
sweep lives in test_properties_wire.py.
"""

import json

import pytest

from repro.browser import Browser
from repro.core import MouseMoveAction, RCBAgent
from repro.core.serveplan import BroadcastPlan, PlanFallback
from repro.core.xmlformat import (
    EMPTY_ACTIONS_WIRE,
    split_wire_template,
    wire_delta_template,
)
from repro.html import Text
from repro.http import Headers, HttpResponse, WirePlan
from repro.net import LAN_PROFILE, Host, Network
from repro.obs import DELTA_FALLBACK, EventBus
from repro.sim import Simulator
from repro.webserver import OriginServer, StaticSite

PAGE = (
    "<html><head><title>Wire test</title><meta charset='utf-8'></head>"
    "<body><h2 id='headline'>News</h2>"
    "<img src='/logo.png'>"
    + "".join("<p id='p%d'>paragraph %d body text</p>" % (i, i) for i in range(10))
    + "</body></html>"
)


def build_agent(batched, **agent_kwargs):
    sim = Simulator()
    network = Network(sim)
    site = StaticSite("site.com")
    site.add_page("/", PAGE)
    site.add("/logo.png", "image/png", b"\x89PNG" + b"l" * 800)
    OriginServer(network, "site.com", site.handle)
    host_pc = Host(network, "host-pc", LAN_PROFILE, segment="campus")
    browser = Browser(host_pc, name="host")
    agent = RCBAgent(enable_batched_serve=batched, **agent_kwargs)
    agent.install(browser)
    sim.run_until_complete(sim.process(browser.navigate("http://site.com/")))
    return sim, browser, agent


def edit_headline(browser, text):
    def mutate(document):
        target = document.get_element_by_id("headline")
        target.remove_all_children()
        target.append_child(Text(text))

    browser.mutate_document(mutate)


def body_bytes(agent, participant, their_time, actions, force_full=False):
    """Serve one poll body through either pipeline; contiguous bytes."""
    body, is_delta = agent._serve_body(
        participant, their_time, actions, force_full=force_full
    )
    response = agent._respond(body)
    return response.to_bytes(), is_delta, response


class TestWirePlan:
    def test_shared_and_owned_accounting(self):
        plan = WirePlan()
        plan.append_shared(b"shared-segment")
        plan.append_owned(b"owned")
        assert plan.zero_copy_bytes == len(b"shared-segment")
        assert plan.copied_bytes == len(b"owned")
        assert len(plan) == plan.zero_copy_bytes + plan.copied_bytes
        assert plan.to_bytes() == b"shared-segmentowned"

    def test_extend_shared_uses_premeasured_length(self):
        plan = WirePlan()
        plan.extend_shared([b"ab", b"cde"], 5)
        assert plan.nbytes == 5
        assert plan.to_bytes() == b"abcde"

    def test_to_bytes_memoized(self):
        plan = WirePlan()
        plan.append_owned(b"x" * 64)
        assert plan.to_bytes() is plan.to_bytes()

    def test_memoryview_buffers_join(self):
        data = b"0123456789"
        plan = WirePlan()
        plan.append_shared(memoryview(data)[2:5])
        assert plan.to_bytes() == b"234"


class TestHttpResponseWirePlan:
    def make_plan(self, payload=b"<xml>body</xml>"):
        plan = WirePlan()
        plan.append_shared(payload)
        return plan

    def test_wire_buffers_share_plan_segments(self):
        payload = b"<xml>" + b"z" * 100 + b"</xml>"
        plan = self.make_plan(payload)
        response = HttpResponse(200, Headers(), plan)
        buffers = response.wire_buffers()
        # The payload segment rides along by reference, not as a copy,
        # after the (also unjoined) status line + header lines.
        assert any(part is payload for part in buffers)
        assert b"".join(buffers) == response.to_bytes()

    def test_content_length_header_and_property(self):
        plan = self.make_plan()
        response = HttpResponse(200, Headers(), plan)
        assert response.content_length == len(plan.to_bytes())
        assert response.headers.get("Content-Length") == str(response.content_length)

    def test_body_property_materializes(self):
        plan = self.make_plan(b"abc")
        response = HttpResponse(200, Headers(), plan)
        assert response.body == b"abc"
        assert response.wire_plan is plan

    def test_plain_bytes_body_has_no_plan(self):
        response = HttpResponse(200, Headers(), b"plain")
        assert response.wire_plan is None
        assert response.wire_buffers()[-1] == b"plain"

    def test_headers_preset_equals_normal_construction(self):
        normal = Headers([("Content-Type", "text/plain"), ("X-N", "1")])
        preset = Headers.preset([("Content-Type", "text/plain"), ("X-N", "1")])
        assert list(normal) == list(preset)


class TestConnectionSendv:
    def test_sendv_delivers_joined_stream(self):
        sim = Simulator()
        network = Network(sim)
        a = Host(network, "a", LAN_PROFILE, segment="campus")
        b = Host(network, "b", LAN_PROFILE, segment="campus")
        listener = b.listen(7000)
        received = []

        def server():
            connection = yield listener.accept()
            received.append((yield connection.recv()))

        def client():
            connection = yield a.connect("b", 7000)
            yield connection.sendv([b"one,", memoryview(b"two,"), bytearray(b"three")])

        sim.process(server())
        sim.run_until_complete(sim.process(client()))
        sim.run(until=sim.now + 5)
        assert received == [b"one,two,three"]

    def test_sendv_counts_total_bytes(self):
        sim = Simulator()
        network = Network(sim)
        a = Host(network, "a", LAN_PROFILE, segment="campus")
        b = Host(network, "b", LAN_PROFILE, segment="campus")
        listener = b.listen(7000)

        def server():
            connection = yield listener.accept()
            yield connection.recv()

        def client():
            connection = yield a.connect("b", 7000)
            yield connection.sendv([b"12345", b"678"])
            return connection

        sim.process(server())
        connection = sim.run_until_complete(sim.process(client()))
        assert connection.bytes_sent == 8


class TestWireTemplates:
    def test_split_wire_template_round_trips(self):
        _sim, _browser, agent = build_agent(False)
        xml = agent._ensure_generated("alice")
        template = split_wire_template(xml)
        assert template is not None
        joined = (
            b"".join(bytes(b) for b in template.pre)
            + EMPTY_ACTIONS_WIRE
            + b"".join(bytes(b) for b in template.post)
        )
        assert joined == xml.encode("utf-8")

    def test_split_wire_template_none_without_user_actions(self):
        assert split_wire_template("<newContent></newContent>") is None

    def test_delta_template_matches_legacy_builder(self):
        from repro.core.xmlformat import NewContent, build_envelope

        ops_json = json.dumps([{"op": "text", "sec": "body", "path": [0], "data": "x"}])
        content = NewContent(
            7, user_actions_json="[]", base_time=3, delta_ops_json=ops_json
        )
        template = wire_delta_template(7, 3, ops_json)
        plan = BroadcastPlan(template, is_delta=True)
        assert plan.personalize(None).to_bytes() == build_envelope(content).encode(
            "utf-8"
        )


class TestBatchedByteIdentity:
    """Legacy and batched pipelines must emit identical bytes."""

    def pair(self, **kwargs):
        _siml, browser_l, agent_l = build_agent(False, **kwargs)
        _simb, browser_b, agent_b = build_agent(True, **kwargs)
        assert agent_l.doc_time == agent_b.doc_time
        return browser_l, agent_l, browser_b, agent_b

    def test_full_envelope_no_actions(self):
        _bl, agent_l, _bb, agent_b = self.pair()
        legacy, d1, _ = body_bytes(agent_l, "alice", 0, [])
        batched, d2, response = body_bytes(agent_b, "alice", 0, [])
        assert legacy == batched
        assert (d1, d2) == (False, False)
        assert response.wire_plan is not None

    def test_full_envelope_with_actions(self):
        _bl, agent_l, _bb, agent_b = self.pair()
        actions = [MouseMoveAction(5, 9), MouseMoveAction(1, 2)]
        legacy, _, _ = body_bytes(agent_l, "alice", 0, actions)
        batched, _, _ = body_bytes(agent_b, "alice", 0, actions)
        assert legacy == batched

    def test_delta_envelope_after_edit(self):
        browser_l, agent_l, browser_b, agent_b = self.pair()
        base = agent_l.doc_time
        # Serve once at the base state so it enters the snapshot ring.
        body_bytes(agent_l, "alice", 0, [])
        body_bytes(agent_b, "alice", 0, [])
        edit_headline(browser_l, "updated")
        edit_headline(browser_b, "updated")
        legacy, d1, _ = body_bytes(agent_l, "alice", base, [MouseMoveAction(3, 4)])
        batched, d2, _ = body_bytes(agent_b, "alice", base, [MouseMoveAction(3, 4)])
        assert legacy == batched
        assert (d1, d2) == (True, True)

    def test_broadcast_shared_actions_identity(self):
        browser_l, agent_l, browser_b, agent_b = self.pair()
        base = agent_l.doc_time
        body_bytes(agent_l, "m1", 0, [])
        body_bytes(agent_b, "m1", 0, [])
        edit_headline(browser_l, "tick")
        edit_headline(browser_b, "tick")
        shared = [MouseMoveAction(7, 7)]
        for member in ("m0", "m1", "m2", "m3"):
            their_time = 0 if member in ("m0", "m2") else base
            legacy, _, _ = body_bytes(agent_l, member, their_time, shared)
            batched, _, _ = body_bytes(agent_b, member, their_time, shared)
            assert legacy == batched, member

    def test_no_snapshot_fallback_identity_and_events(self):
        events_l, events_b = EventBus(), EventBus()
        _bl, agent_l, _bb, agent_b = None, None, None, None
        browser_l_world = build_agent(False, events=events_l)
        browser_b_world = build_agent(True, events=events_b)
        agent_l, agent_b = browser_l_world[2], browser_b_world[2]
        fallbacks_l, fallbacks_b = [], []
        events_l.subscribe(
            lambda e: fallbacks_l.append(e) if e.type == DELTA_FALLBACK else None
        )
        events_b.subscribe(
            lambda e: fallbacks_b.append(e) if e.type == DELTA_FALLBACK else None
        )
        # their_time=999 was never snapshotted: both must fall back to
        # the full envelope and emit one DELTA_FALLBACK per serve.
        for member in ("m0", "m1"):
            legacy, d1, _ = body_bytes(agent_l, member, 999, [])
            batched, d2, _ = body_bytes(agent_b, member, 999, [])
            assert legacy == batched
            assert (d1, d2) == (False, False)
        assert len(fallbacks_l) == len(fallbacks_b) == 2
        assert {e.data["reason"] for e in fallbacks_b} == {"no-snapshot"}
        assert agent_l.stats["delta_fallbacks"] == agent_b.stats["delta_fallbacks"] == 2

    def test_oversize_fallback_identity(self):
        browser_l, agent_l, browser_b, agent_b = self.pair()
        base = agent_l.doc_time
        body_bytes(agent_l, "alice", 0, [])
        body_bytes(agent_b, "alice", 0, [])

        def rewrite_everything(document):
            body = document.body
            for child in list(body.children):
                body.remove_child(child)
            for i in range(40):
                body.append_child(
                    document.create_element("div", id="new-%d" % i)
                )

        browser_l.mutate_document(rewrite_everything)
        browser_b.mutate_document(rewrite_everything)
        legacy, d1, _ = body_bytes(agent_l, "alice", base, [])
        batched, d2, _ = body_bytes(agent_b, "alice", base, [])
        assert legacy == batched
        assert d1 == d2  # same full-vs-delta verdict from both pipelines
        assert (
            agent_l.stats["delta_fallbacks"] == agent_b.stats["delta_fallbacks"]
        )

    def test_cookie_replication_identity(self):
        browser_l, agent_l, browser_b, agent_b = self.pair(replicate_cookies=True)
        for browser in (browser_l, browser_b):
            browser.cookie_jar.set("site.com", "sid", "s3cr3t")
        edit_headline(browser_l, "with-cookies")
        edit_headline(browser_b, "with-cookies")
        legacy, _, _ = body_bytes(agent_l, "alice", 0, [])
        batched, _, _ = body_bytes(agent_b, "alice", 0, [])
        assert legacy == batched
        assert b"docCookies" in batched

    def test_always_resend_force_full_identity(self):
        _bl, agent_l, _bb, agent_b = self.pair()
        current = agent_l.doc_time
        legacy, _, _ = body_bytes(
            agent_l, "alice", current, [MouseMoveAction(1, 1)], force_full=True
        )
        batched, _, _ = body_bytes(
            agent_b, "alice", current, [MouseMoveAction(1, 1)], force_full=True
        )
        assert legacy == batched

    def test_stats_parity_over_poll_sequence(self):
        browser_l, agent_l, browser_b, agent_b = self.pair()
        members = ["m%d" % i for i in range(6)]
        acked = {m: 0 for m in members}
        for tick in range(4):
            edit_headline(browser_l, "tick-%d" % tick)
            edit_headline(browser_b, "tick-%d" % tick)
            shared = [MouseMoveAction(tick, tick)]
            for index, member in enumerate(members):
                their_time = acked[member]
                actions = shared if index % 2 == 0 else []
                legacy, _, _ = body_bytes(agent_l, member, their_time, actions)
                batched, _, _ = body_bytes(agent_b, member, their_time, actions)
                assert legacy == batched
                if index % 3 != 2:  # stragglers never ack
                    acked[member] = agent_l.doc_time
        for key in ("delta_fallbacks", "delta_bytes_saved"):
            assert agent_l.stats[key] == agent_b.stats[key], key

    def test_batched_instruments_progress(self):
        browser_b, agent_b = build_agent(True)[1:]
        edit_headline(browser_b, "tick")
        for member in ("m0", "m1", "m2"):
            body_bytes(agent_b, member, 0, [])
        stats = agent_b.stats
        assert stats["serve_plans_built"] >= 1
        assert stats["serve_batched_polls"] >= 2
        assert stats["wire_bytes_zero_copy"] > 0
        assert stats["serve_amortization"] > 1.0


class TestLegacyToggle:
    def test_disabled_agent_serves_str_path(self):
        _sim, browser, agent = build_agent(False)
        edit_headline(browser, "x")
        body, _ = agent._serve_body("alice", 0, [])
        assert isinstance(body, str)
        response = agent._respond(body)
        assert response.wire_plan is None
        assert agent._wire_templates == {}
        assert agent._plans == {}
        assert agent.stats["serve_plans_built"] == 0

    def test_disabled_generator_skips_segment_encoding(self):
        _sim, _browser, agent = build_agent(False)
        agent._ensure_generated("alice")
        # Legacy path never asks for segment bytes.
        assert agent._wire_templates == {}

    def test_mid_session_toggle_still_serves_identical_bytes(self):
        _siml, browser_l, agent_l = build_agent(False)
        _simb, browser_b, agent_b = build_agent(False)
        edit_headline(browser_l, "flip")
        edit_headline(browser_b, "flip")
        agent_b.enable_batched_serve = True  # no segment bytes cached yet
        legacy, _, _ = body_bytes(agent_l, "alice", 0, [])
        batched, _, response = body_bytes(agent_b, "alice", 0, [])
        assert legacy == batched


class TestPlanFallbackMemo:
    def test_fallback_is_remembered_not_rediffed(self):
        _sim, browser, agent = build_agent(True)
        edit_headline(browser, "x")
        agent._serve_body("m0", 999, [])
        mode_key = agent.cache_policy.mode_key("m0")
        entry = agent._plans[(999, mode_key)]
        assert isinstance(entry, PlanFallback)
        assert entry.reason == "no-snapshot"
        # A co-due member hits the memo; fallback stats still replay.
        before = agent.stats["delta_fallbacks"]
        agent._serve_body("m1", 999, [])
        assert agent._plans[(999, mode_key)] is entry
        assert agent.stats["delta_fallbacks"] == before + 1


class TestServeOverHttp:
    def test_poll_over_wire_parses_and_matches_legacy(self):
        from repro.core import parse_envelope
        from repro.http import HttpClient

        responses = {}
        for batched in (False, True):
            sim, browser, agent = build_agent(batched)
            edit_headline(browser, "wire-check")
            part = Host(
                browser.host.network, "part-pc-%d" % batched, LAN_PROFILE,
                segment="campus",
            )
            client = HttpClient(part)
            payload = json.dumps(
                {"participant": "alice", "timestamp": 0, "actions": []}
            ).encode()

            def poll():
                return (
                    yield from client.post("http://host-pc:3000/poll", body=payload)
                )

            response = sim.run_until_complete(sim.process(poll()))
            assert response.status == 200
            responses[batched] = response
        assert responses[True].body == responses[False].body
        envelope = parse_envelope(responses[True].text())
        assert envelope.doc_time > 0


class TestHeldPollBroadcastPlan:
    """A long poll released by a document change joins that tick's
    broadcast plan: identical bytes to a direct serve, batched-serve
    counters advancing, and shared segments carried zero-copy."""

    def _world(self, batched):
        sim, browser, agent = build_agent(batched, transport="longpoll")
        clients = {}
        for member in ("m0", "m1"):
            pc = Host(
                browser.host.network, "pc-%s-%d" % (member, batched),
                LAN_PROFILE, segment="campus",
            )
            from repro.http import HttpClient

            clients[member] = HttpClient(pc)
        return sim, browser, agent, clients

    def _poll(self, client, member, their_time):
        payload = json.dumps(
            {
                "participant": member,
                "timestamp": their_time,
                "actions": [],
                "transport": "longpoll",
            }
        ).encode()
        return client.post("http://host-pc:3000/poll", body=payload)

    def test_released_holds_join_the_tick_plan(self):
        sim, browser, agent, clients = self._world(batched=True)
        base = agent.doc_time
        done = {}

        def member_poll(member):
            response = yield from self._poll(clients[member], member, base)
            done[member] = response

        for member in clients:
            sim.process(member_poll(member))
        sim.run(until=sim.now + 0.5)
        # Both polls are parked: nothing to send, so nothing answered.
        assert not done
        assert agent.stats["held_polls_open"] == 2

        batched_before = agent.stats["serve_batched_polls"]
        edit_headline(browser, "released together")
        sim.run(until=sim.now + 2.0)
        assert set(done) == {"m0", "m1"}
        assert done["m0"].body == done["m1"].body
        # The two co-released holds shared one broadcast plan...
        assert agent.stats["serve_batched_polls"] > batched_before
        # ...assembled from shared pre-encoded segments.
        assert agent.stats["wire_bytes_zero_copy"] > 0
        assert agent.stats["held_polls_open"] == 0

    def test_released_hold_bytes_match_direct_serve(self):
        """The body a released hold ships is byte-for-byte what the
        legacy str pipeline would serve for the same (member, base)."""
        bodies = {}
        for batched in (False, True):
            sim, browser, agent, clients = self._world(batched)
            base = agent.doc_time
            done = {}
            # Warm the snapshot ring at the base state so the post-edit
            # serve is a delta on both sides.
            agent._serve_body("m0", 0, [])

            def member_poll(member):
                response = yield from self._poll(clients[member], member, base)
                done[member] = response

            if batched:
                # Held exchange over the wire through the plan pipeline.
                for member in clients:
                    sim.process(member_poll(member))
                sim.run(until=sim.now + 0.5)
                edit_headline(browser, "identity probe")
                sim.run(until=sim.now + 2.0)
                bodies[batched] = done["m0"].body
            else:
                # Direct legacy serve of the same delta, with the clock
                # advanced identically so doc_time stamps agree.
                sim.run(until=sim.now + 0.5)
                edit_headline(browser, "identity probe")
                raw, is_delta = agent._serve_body("m0", base, [])
                assert is_delta
                bodies[batched] = agent._respond(raw).body
        assert bodies[True] == bodies[False]
