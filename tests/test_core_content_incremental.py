"""Incremental content generation: byte-identity, reuse fences,
canonical snapshot sharing, and the spliced payload encoding.

The optimization contract is strict: with a ``mode_key``, a generation
after any DOM mutation must produce an envelope byte-identical to a
from-scratch run, while rebuilding only the dirty subtrees.  Anything
the fingerprint cannot vouch for (different base URL, changed cache
content, fresh rewrite callables, changed URL map) must fall back to a
full rebuild rather than risk a stale reuse.
"""

import json
import string

import pytest
from hypothesis import given, settings, strategies as st

from repro.browser import BrowserCache
from repro.core import ContentGenerator, diff_trees
from repro.core.actions import ClickAction, encode_actions
from repro.core.agent import RCBAgent
from repro.core.delta import content_tree
from repro.core.xmlformat import (
    PAYLOAD_SUFFIX,
    HeadChild,
    assemble_envelope,
    head_child_payload,
    head_child_prefix,
    js_escape,
    payload_encode,
    top_element_prefix,
)
from repro.html import Comment, Element, Text, parse_document
from repro.net import parse_url

BASE = parse_url("http://site.com/page.html")

MARKUP = (
    "<html><head><title>T</title>"
    '<link rel="stylesheet" href="css/main.css"></head>'
    "<body>"
    + "".join(
        '<div id="d%d"><span>cell %d</span><a href="/p/%d">go</a></div>' % (i, i, i)
        for i in range(30)
    )
    + "</body></html>"
)


def fresh_envelope(document, doc_time, **kwargs):
    """A from-scratch generation with a brand-new generator."""
    return ContentGenerator().generate(document, BASE, doc_time=doc_time, **kwargs).xml_text


def assert_identical(generator, document, doc_time, **kwargs):
    """Incremental output must match a from-scratch run byte for byte."""
    result = generator.generate(
        document, BASE, doc_time=doc_time, mode_key="m", build_canonical=True, **kwargs
    )
    assert result.xml_text == fresh_envelope(document, doc_time, **kwargs)
    return result


def div(document, index):
    return document.get_element_by_id("d%d" % index)


# -- byte-identity across edit kinds ------------------------------------------------


def test_second_generation_is_incremental_and_identical():
    document = parse_document(MARKUP)
    generator = ContentGenerator()
    first = assert_identical(generator, document, 1)
    assert first.mode == "full"
    div(document, 7).child_nodes[0].child_nodes[0].data = "edited"
    second = assert_identical(generator, document, 2)
    assert second.mode == "incremental"
    assert second.reused_subtrees > 0
    assert second.dirty_subtrees < first.dirty_subtrees / 4


@pytest.mark.parametrize(
    "edit",
    [
        lambda d: div(d, 3).set_attribute("class", "hot"),
        lambda d: div(d, 3).remove_attribute("id"),
        lambda d: div(d, 3).append_child(Text("tail")),
        lambda d: div(d, 3).remove_child(div(d, 3).child_nodes[0]),
        lambda d: div(d, 3).append_child(Element("em")),
        lambda d: d.document_element.children[0].append_child(Element("meta")),
    ],
    ids=["set-attr", "remove-attr", "append-text", "remove-child", "append-el", "head-edit"],
)
def test_edit_kinds_stay_byte_identical(edit):
    document = parse_document(MARKUP)
    generator = ContentGenerator()
    assert_identical(generator, document, 1)
    edit(document)
    result = assert_identical(generator, document, 2)
    assert result.mode == "incremental"


def test_interactive_insertion_rebuilds_shifted_refs():
    """Inserting an <a> early shifts every later data-rcbref index; the
    counter fence must force those rebuilds, and output stays identical."""
    document = parse_document(MARKUP)
    generator = ContentGenerator()
    assert_identical(generator, document, 1)
    anchor = Element("a", {"href": "/new"})
    anchor.append_child(Text("new"))
    div(document, 0).append_child(anchor)
    result = assert_identical(generator, document, 2)
    assert result.mode == "incremental"
    # Nearly everything after the insertion point is dirty.
    assert result.reused_subtrees < 5


def test_no_change_reuses_everything():
    document = parse_document(MARKUP)
    generator = ContentGenerator()
    assert_identical(generator, document, 1)
    result = assert_identical(generator, document, 2)
    assert result.mode == "incremental"
    assert result.dirty_subtrees == 0
    assert result.segments_reused == result.segments_total


# -- reuse fences -------------------------------------------------------------------


def test_forget_drops_state():
    document = parse_document(MARKUP)
    generator = ContentGenerator()
    assert_identical(generator, document, 1)
    generator.forget("m")
    assert assert_identical(generator, document, 2).mode == "full"


def test_url_map_change_falls_back_to_full():
    document = parse_document(MARKUP)
    generator = ContentGenerator()
    assert generator.generate(
        document, BASE, doc_time=1, mode_key="m"
    ).mode == "full"
    result = generator.generate(
        document, BASE, doc_time=2, mode_key="m", url_map={"css/main.css": "http://cdn/x.css"}
    )
    assert result.mode == "full"
    link_attrs = dict(result.content.head_children[1].attributes)
    assert link_attrs["href"] == "http://cdn/x.css"


def test_fresh_callables_fall_back_stable_callables_reuse():
    document = parse_document(MARKUP)
    generator = ContentGenerator()
    cache = BrowserCache()
    cache.store("http://site.com/css/main.css", "text/css", b"body{}")

    def make_should_cache():
        return lambda url, content_type, size: True

    stable = make_should_cache()
    session = cache.open_read_session()
    first = generator.generate(
        document, BASE, doc_time=1, mode_key="m",
        cache_session=session, cache_mode=True, should_cache=stable,
    )
    assert first.mode == "full"
    again = generator.generate(
        document, BASE, doc_time=2, mode_key="m",
        cache_session=session, cache_mode=True, should_cache=stable,
    )
    assert again.mode == "incremental"
    fresh = generator.generate(
        document, BASE, doc_time=3, mode_key="m",
        cache_session=session, cache_mode=True, should_cache=make_should_cache(),
    )
    assert fresh.mode == "full"


def test_cache_revision_invalidates_reuse():
    """Storing a new cacheable object must defeat clone reuse: the old
    clone's URLs were rewritten against the previous cache content."""
    document = parse_document(MARKUP)
    generator = ContentGenerator()
    cache = BrowserCache()
    should_cache = lambda url, content_type, size: True
    session = cache.open_read_session()
    kwargs = dict(cache_session=session, cache_mode=True, should_cache=should_cache)
    generator.generate(document, BASE, doc_time=1, mode_key="m", **kwargs)
    cache.store("http://site.com/css/main.css", "text/css", b"body{}")
    result = generator.generate(document, BASE, doc_time=2, mode_key="m", **kwargs)
    assert result.mode == "full"
    assert result.xml_text == fresh_envelope(document, 2, **kwargs)
    assert result.cache_rewrites > 0


def test_distinct_mode_keys_are_independent():
    document = parse_document(MARKUP)
    generator = ContentGenerator()
    a1 = generator.generate(document, BASE, doc_time=1, mode_key="a")
    b1 = generator.generate(document, BASE, doc_time=1, mode_key="b")
    assert a1.mode == b1.mode == "full"
    assert a1.xml_text == b1.xml_text
    div(document, 2).set_attribute("class", "x")
    a2 = generator.generate(document, BASE, doc_time=2, mode_key="a")
    assert a2.mode == "incremental"
    b2 = generator.generate(document, BASE, doc_time=2, mode_key="b")
    assert b2.mode == "incremental"
    assert a2.xml_text == b2.xml_text


# -- caches and counters ------------------------------------------------------------


def test_url_memo_hits_on_regeneration():
    document = parse_document(MARKUP)
    generator = ContentGenerator()
    first = generator.generate(document, BASE, doc_time=1, mode_key="m")
    assert first.urlcache_hits == 0 or first.urls_rewritten > 0
    # Force full rebuild via forget: every URL resolves again, now memoized.
    generator.forget()
    second = generator.generate(document, BASE, doc_time=2, mode_key="m")
    assert second.mode == "full"
    assert second.urlcache_hits > 0
    assert second.urls_rewritten == first.urls_rewritten


def test_segment_cache_serves_unchanged_sections():
    document = parse_document(MARKUP)
    generator = ContentGenerator()
    generator.generate(document, BASE, doc_time=1, mode_key="m")
    div(document, 5).set_attribute("class", "x")
    result = generator.generate(document, BASE, doc_time=2, mode_key="m")
    # Head untouched: its section payload is reused outright.
    assert result.segments_reused >= 1
    assert generator.segment_cache.hits > 0
    assert result.reuse_ratio > 0.5


# -- canonical snapshot trees -------------------------------------------------------


def canonical_pair(markup, mutate):
    document = parse_document(markup)
    generator = ContentGenerator()
    first = generator.generate(document, BASE, doc_time=1, mode_key="m", build_canonical=True)
    mutate(document)
    second = generator.generate(document, BASE, doc_time=2, mode_key="m", build_canonical=True)
    return first, second


def test_canonical_matches_participant_parse():
    first, second = canonical_pair(
        MARKUP, lambda d: div(d, 4).child_nodes[0].append_child(Text("!"))
    )
    for result in (first, second):
        assert diff_trees(content_tree(result.content), result.canonical_root) == []


def test_canonical_shares_unchanged_subtrees_and_diffs_small():
    first, second = canonical_pair(
        MARKUP, lambda d: div(d, 4).child_nodes[0].child_nodes[0].__setattr__("data", "new")
    )
    stats = {}
    ops = diff_trees(first.canonical_root, second.canonical_root, stats=stats)
    assert ops == [{"op": "text", "sec": "body", "path": [4, 0, 0], "data": "new"}]
    assert stats["skipped"] > 20
    assert stats["serialized"] < 10
    # Unchanged body children are the same objects across snapshots.
    old_body = first.canonical_root.children[-1]
    new_body = second.canonical_root.children[-1]
    assert old_body.child_nodes[0] is new_body.child_nodes[0]
    assert old_body.child_nodes[4] is not new_body.child_nodes[4]


@pytest.mark.parametrize(
    "mutate",
    [
        # Parser would close the outer <p> at the nested <p>'s start tag.
        lambda d: div(d, 1).append_child(Element("p")) or div(d, 1).child_nodes[-1].append_child(Element("p")),
        # Raw-text content containing its own end tag parses shorter.
        lambda d: div(d, 1).append_child(Element("script")) or div(d, 1).child_nodes[-1].append_child(Text("x</script>y")),
        # Comment data containing the close delimiter truncates.
        lambda d: div(d, 1).append_child(Comment("a --> b")),
    ],
    ids=["nested-p", "script-end-tag", "comment-delimiter"],
)
def test_canonical_guard_fallbacks_match_parse(mutate):
    """Trees the parser would restructure must fall back to a localized
    round trip so the snapshot still mirrors the participant's parse."""
    _first, second = canonical_pair(MARKUP, mutate)
    assert diff_trees(content_tree(second.content), second.canonical_root) == []


# -- spliced payload encoding -------------------------------------------------------

_payload_text = st.text(
    alphabet=string.printable + "é☃\U0001F600", min_size=0, max_size=60
)


@settings(max_examples=100, deadline=None)
@given(_payload_text)
def test_spliced_payload_matches_monolithic(inner):
    record = HeadChild("div", [("class", "a b"), ("data-x", 'q"<&>')], inner)
    spliced = (
        head_child_prefix(record.tag, record.attributes)
        + payload_encode(inner)
        + PAYLOAD_SUFFIX
    )
    assert spliced == head_child_payload(record)


@settings(max_examples=60, deadline=None)
@given(_payload_text, _payload_text)
def test_payload_encode_distributes_over_concatenation(a, b):
    assert payload_encode(a + b) == payload_encode(a) + payload_encode(b)


def test_top_element_prefix_shape():
    assert top_element_prefix([]) + payload_encode("hi") + PAYLOAD_SUFFIX == js_escape(
        json.dumps({"attrs": [], "inner": "hi"})
    )


# -- envelope splitting / action splicing (agent statics) ---------------------------


def test_splice_preserves_sections_after_user_actions():
    """Regression: splicing userActions used to truncate the envelope at
    </newContent>, silently dropping the docCookies section."""
    xml = assemble_envelope(
        7, [], [], "[]", cookies_json='[{"name":"sid","value":"1"}]'
    )
    assert "<docCookies>" in xml
    spliced = RCBAgent._splice_actions(xml, [ClickAction("ref-1")])
    assert "<docCookies>" in spliced
    assert js_escape(encode_actions([ClickAction("ref-1")])) in spliced
    assert spliced.endswith("</newContent>")


def test_split_envelope_round_trips():
    xml = assemble_envelope(3, [], [], "[]")
    prefix, suffix = RCBAgent._split_envelope(xml)
    assert prefix + "<userActions><![CDATA[%s]]></userActions>" % js_escape("[]") + suffix == xml
    assert RCBAgent._split_envelope("<no-actions/>") is None


def test_splice_equals_regenerated_envelope():
    document = parse_document(MARKUP)
    generator = ContentGenerator()
    actions = [ClickAction("ref-9")]
    plain = generator.generate(document, BASE, doc_time=5).xml_text
    direct = ContentGenerator().generate(
        document, BASE, doc_time=5, user_actions_json=encode_actions(actions)
    ).xml_text
    assert RCBAgent._splice_actions(plain, actions) == direct
