"""Tests for cache-mode policies (paper §4.1.2 flexibility)."""

import pytest

from repro.browser import Browser
from repro.core import (
    AlwaysCachePolicy,
    CoBrowsingSession,
    ContentTypeCachePolicy,
    NeverCachePolicy,
    PerParticipantCachePolicy,
    SizeThresholdCachePolicy,
    coerce_cache_policy,
)
from repro.net import LAN_PROFILE, Host, Network
from repro.sim import Simulator
from repro.webserver import OriginServer, StaticSite


class TestPolicyDecisions:
    def args(self, **overrides):
        base = {
            "participant_id": "alice",
            "page_url": "http://site.com/",
            "object_url": "http://site.com/a.png",
            "content_type": "image/png",
            "size": 5000,
        }
        base.update(overrides)
        return base

    def test_always_and_never(self):
        assert AlwaysCachePolicy().use_cache_for(**self.args())
        assert not NeverCachePolicy().use_cache_for(**self.args())
        assert AlwaysCachePolicy().ever_uses_cache
        assert not NeverCachePolicy().ever_uses_cache

    def test_coercion_from_bool(self):
        assert isinstance(coerce_cache_policy(True), AlwaysCachePolicy)
        assert isinstance(coerce_cache_policy(False), NeverCachePolicy)
        policy = SizeThresholdCachePolicy(max_bytes=100)
        assert coerce_cache_policy(policy) is policy
        with pytest.raises(TypeError):
            coerce_cache_policy("yes")

    def test_per_participant(self):
        policy = PerParticipantCachePolicy(["alice"])
        assert policy.use_cache_for(**self.args(participant_id="alice"))
        assert not policy.use_cache_for(**self.args(participant_id="bob"))
        assert policy.mode_key("alice") != policy.mode_key("bob")
        policy.enable_for("bob")
        assert policy.use_cache_for(**self.args(participant_id="bob"))
        policy.disable_for("bob")
        assert not policy.use_cache_for(**self.args(participant_id="bob"))

    def test_per_participant_default(self):
        policy = PerParticipantCachePolicy([], default=True)
        assert policy.use_cache_for(**self.args(participant_id="anyone"))
        assert policy.mode_key("anyone") == "cache"

    def test_content_type(self):
        policy = ContentTypeCachePolicy(["text/css", "application/javascript"])
        assert policy.use_cache_for(**self.args(content_type="text/css"))
        assert policy.use_cache_for(**self.args(content_type="TEXT/CSS; charset=x"))
        assert not policy.use_cache_for(**self.args(content_type="image/png"))

    def test_size_threshold(self):
        policy = SizeThresholdCachePolicy(max_bytes=8000, min_bytes=100)
        assert policy.use_cache_for(**self.args(size=5000))
        assert not policy.use_cache_for(**self.args(size=9000))
        assert not policy.use_cache_for(**self.args(size=50))

    def test_size_threshold_validation(self):
        with pytest.raises(ValueError):
            SizeThresholdCachePolicy(max_bytes=10, min_bytes=100)

    def test_shared_mode_key_default(self):
        assert AlwaysCachePolicy().mode_key("a") == AlwaysCachePolicy().mode_key("b")


def build_world():
    sim = Simulator()
    network = Network(sim)
    site = StaticSite("s.com")
    site.add_page(
        "/",
        "<html><head><link rel='stylesheet' href='/big.css'></head>"
        "<body><img src='/small.png'><img src='/large.png'></body></html>",
    )
    site.add("/small.png", "image/png", b"s" * 1000)
    site.add("/large.png", "image/png", b"L" * 50000)
    site.add("/big.css", "text/css", b"c" * 20000)
    OriginServer(network, "s.com", site.handle)
    host_pc = Host(network, "host-pc", LAN_PROFILE, segment="campus")
    hb = Browser(host_pc, name="bob")
    return sim, network, hb


def run(sim, generator):
    return sim.run_until_complete(sim.process(generator))


def participant(network, name):
    pc = Host(network, name + "-pc", LAN_PROFILE, segment="campus")
    return Browser(pc, name=name)


class TestPolicyEndToEnd:
    def sources(self, browser):
        objects = browser.page.objects
        from_host = [o for o in objects if "host-pc:3000" in o.url]
        from_origin = [o for o in objects if o.url.startswith("http://s.com")]
        return from_host, from_origin

    def sync_with_policy(self, policy, participants=1):
        sim, network, hb = build_world()
        session = CoBrowsingSession(hb, cache_mode=policy)
        browsers = [participant(network, "p%d" % i) for i in range(participants)]

        def scenario():
            for index, browser in enumerate(browsers):
                yield from session.join(browser, participant_id="p%d" % index)
            yield from session.host_navigate("http://s.com/")
            yield from session.wait_until_synced()

        run(sim, scenario())
        return session, browsers

    def test_size_threshold_splits_objects(self):
        session, (pb,) = self.sync_with_policy(SizeThresholdCachePolicy(max_bytes=8000))
        from_host, from_origin = self.sources(pb)
        assert [o.size for o in from_host] == [1000]  # small.png via agent
        assert sorted(o.size for o in from_origin) == [20000, 50000]

    def test_content_type_policy_serves_css_only(self):
        session, (pb,) = self.sync_with_policy(ContentTypeCachePolicy(["text/css"]))
        from_host, from_origin = self.sources(pb)
        assert [o.content_type for o in from_host] == ["text/css"]
        assert all(o.content_type == "image/png" for o in from_origin)

    def test_per_participant_mixed_session(self):
        policy = PerParticipantCachePolicy(["p0"])
        session, browsers = self.sync_with_policy(policy, participants=2)
        cached_host, cached_origin = self.sources(browsers[0])
        direct_host, direct_origin = self.sources(browsers[1])
        assert len(cached_host) == 3 and cached_origin == []
        assert direct_host == [] and len(direct_origin) == 3
        # Two mode groups -> two generations for one document state.
        assert session.agent.generation_count == 2

    def test_same_mode_participants_share_generation(self):
        session, _browsers = self.sync_with_policy(AlwaysCachePolicy(), participants=3)
        assert session.agent.generation_count == 1
        assert session.agent.stats["content_responses"] == 3

    def test_legacy_bool_setter_still_works(self):
        session, (pb,) = self.sync_with_policy(True)
        assert session.agent.cache_mode is True
        session.agent.cache_mode = False
        assert isinstance(session.agent.cache_policy, NeverCachePolicy)
