"""The unified metrics registry: instruments, percentiles, facades.

Covers the observability tentpole's storage layer: get-or-create
instrument identity, kind-conflict detection, sliding-window histograms
with nearest-rank percentiles and cross-instrument merging, snapshots
and rendering, and the StatsFacade dict view that keeps the historical
``component.stats["key"]`` API alive over registry instruments.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    StatsFacade,
    percentile,
)


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 50) == 0.0

    def test_nearest_rank_bounds(self):
        samples = [5.0, 1.0, 3.0, 2.0, 4.0]
        assert percentile(samples, 0) == 1.0
        assert percentile(samples, 100) == 5.0
        assert percentile(samples, 50) == 3.0

    def test_single_sample_everywhere(self):
        assert percentile([7.0], 1) == 7.0
        assert percentile([7.0], 99) == 7.0


class TestInstruments:
    def test_counter_inc_and_set(self):
        registry = MetricsRegistry()
        counter = registry.counter("polls", node="a")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        counter.set(0)
        assert counter.value == 0

    def test_gauge(self):
        gauge = MetricsRegistry().gauge("members")
        gauge.set(3.0)
        gauge.inc()
        assert gauge.value == 4.0

    def test_get_or_create_identity(self):
        registry = MetricsRegistry()
        a = registry.counter("polls", node="r1")
        b = registry.counter("polls", node="r1")
        other_label = registry.counter("polls", node="r2")
        assert a is b
        assert a is not other_label

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        a = registry.counter("polls", node="r1", mode="cache")
        b = registry.counter("polls", mode="cache", node="r1")
        assert a is b

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("polls")
        with pytest.raises(TypeError):
            registry.gauge("polls")
        with pytest.raises(TypeError):
            registry.histogram("polls")

    def test_find_never_creates(self):
        registry = MetricsRegistry()
        assert registry.find("nope") is None
        registry.counter("yes")
        assert isinstance(registry.find("yes"), Counter)
        assert registry.find("nope") is None


class TestHistogram:
    def test_count_sum_mean_minmax(self):
        histogram = MetricsRegistry().histogram("lat")
        for value in (0.1, 0.2, 0.3):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(0.6)
        assert histogram.mean == pytest.approx(0.2)
        assert histogram.min == pytest.approx(0.1)
        assert histogram.max == pytest.approx(0.3)

    def test_percentiles_over_window(self):
        histogram = MetricsRegistry().histogram("lat")
        for value in range(1, 101):
            histogram.observe(float(value))
        assert histogram.p50 == 50.0
        assert histogram.p95 == 95.0
        assert histogram.p99 == 99.0

    def test_sliding_window_bounds_memory(self):
        registry = MetricsRegistry(histogram_window=10)
        histogram = registry.histogram("lat")
        for value in range(100):
            histogram.observe(float(value))
        assert histogram.count == 100  # all-time count survives
        assert len(histogram.values) == 10  # window retains the newest
        assert histogram.values[0] == 90.0
        assert histogram.p50 == 94.0  # percentiles are recency-weighted

    def test_merge_folds_samples_and_totals(self):
        a = Histogram("lat", ())
        b = Histogram("lat", ())
        a.observe(1.0)
        b.observe(3.0)
        b.observe(5.0)
        a.merge(b)
        assert a.count == 3
        assert a.sum == pytest.approx(9.0)
        assert a.min == 1.0
        assert a.max == 5.0
        assert sorted(a.values) == [1.0, 3.0, 5.0]

    def test_empty_percentiles_are_zero(self):
        histogram = MetricsRegistry().histogram("lat")
        assert histogram.p50 == 0.0
        assert histogram.mean == 0.0


class TestRegistryViews:
    def test_snapshot_shapes(self):
        registry = MetricsRegistry()
        registry.counter("polls", node="a").inc(2)
        registry.gauge("members").set(4.0)
        registry.histogram("lat").observe(0.5)
        rows = {row["name"]: row for row in registry.snapshot()}
        assert rows["polls"]["value"] == 2
        assert rows["polls"]["labels"] == {"node": "a"}
        assert rows["members"]["type"] == "gauge"
        assert rows["lat"]["count"] == 1
        assert rows["lat"]["p95"] == 0.5

    def test_render_lists_every_instrument(self):
        registry = MetricsRegistry()
        registry.counter("polls").inc()
        registry.histogram("lat").observe(0.25)
        text = registry.render("Check")
        assert "Check: 2 instruments" in text
        assert "polls" in text
        assert "p95=" in text

    def test_histograms_named_across_labels(self):
        registry = MetricsRegistry()
        registry.histogram("sync", node="a").observe(1.0)
        registry.histogram("sync", node="b").observe(2.0)
        registry.counter("sync_count")
        found = registry.histograms_named("sync")
        assert len(found) == 2
        assert all(isinstance(h, Histogram) for h in found)


class TestStatsFacade:
    def build(self):
        registry = MetricsRegistry()
        facade = StatsFacade(
            registry,
            prefix="agent_",
            labels={"node": "bob"},
            counters=("polls", "errors"),
            gauges=("last_seconds",),
            histograms=("seconds",),
        )
        return registry, facade

    def test_dict_reads_keep_working(self):
        _registry, facade = self.build()
        facade.inc("polls", 3)
        assert facade["polls"] == 3
        assert dict(facade) == {"polls": 3, "errors": 0, "last_seconds": 0.0}
        assert "polls" in facade
        assert len(facade) == 3
        assert sorted(facade) == ["errors", "last_seconds", "polls"]

    def test_mutation_reaches_registry_instruments(self):
        registry, facade = self.build()
        facade.inc("polls")
        facade.set("last_seconds", 0.75)
        facade.observe("seconds", 0.75)
        assert registry.counter("agent_polls", node="bob").value == 1
        assert registry.gauge("agent_last_seconds", node="bob").value == 0.75
        assert registry.histogram("agent_seconds", node="bob").count == 1

    def test_histograms_stay_out_of_the_mapping_view(self):
        _registry, facade = self.build()
        assert "seconds" not in facade
        assert facade.histogram("seconds").count == 0

    def test_item_assignment_and_update_route_to_instruments(self):
        registry, facade = self.build()
        facade["polls"] = 9
        facade.update({"errors": 2}, last_seconds=0.5)
        assert facade["polls"] == 9
        assert facade["errors"] == 2
        assert registry.gauge("agent_last_seconds", node="bob").value == 0.5

    def test_unknown_key_auto_declares_by_value_type(self):
        _registry, facade = self.build()
        facade["new_counter"] = 4
        facade["new_gauge"] = 1.5
        assert isinstance(facade.instrument("new_counter"), Counter)
        assert isinstance(facade.instrument("new_gauge"), Gauge)

    def test_shared_instrument_identity_across_facades(self):
        # A relay's replacement upstream snippet keeps accumulating into
        # the histograms its dead predecessor started: same (name,
        # labels) -> same instrument.
        registry = MetricsRegistry()
        first = StatsFacade(registry, prefix="s_", labels={"node": "r1"}, histograms=("sync",))
        first.observe("sync", 1.0)
        second = StatsFacade(registry, prefix="s_", labels={"node": "r1"}, histograms=("sync",))
        second.observe("sync", 2.0)
        assert second.histogram("sync").count == 2


class TestHistogramEdgeCases:
    """Percentile and merge corners that bit real report code."""

    def test_single_sample_is_every_percentile(self):
        histogram = MetricsRegistry().histogram("lat")
        histogram.observe(0.42)
        assert histogram.p50 == 0.42
        assert histogram.p95 == 0.42
        assert histogram.p99 == 0.42

    def test_empty_histogram_is_all_zeros(self):
        histogram = MetricsRegistry().histogram("lat")
        assert histogram.count == 0
        assert histogram.sum == 0.0
        assert histogram.p95 == 0.0
        assert histogram.values == []

    def test_merge_of_empty_is_a_noop(self):
        a = Histogram("lat", ())
        a.observe(1.0)
        before = (a.count, a.sum, a.min, a.max, a.values)
        a.merge(Histogram("lat", ()))
        assert (a.count, a.sum, a.min, a.max, a.values) == before

    def test_merge_into_empty_adopts_extremes(self):
        a = Histogram("lat", ())
        b = Histogram("lat", ())
        b.observe(2.0)
        b.observe(8.0)
        a.merge(b)
        assert (a.count, a.min, a.max) == (2, 2.0, 8.0)
        assert a.p50 == 2.0

    def test_self_merge_does_not_loop(self):
        # Regression: merging a histogram into itself used to iterate
        # the deque it was appending to.
        a = Histogram("lat", ())
        a.observe(1.0)
        a.observe(3.0)
        a.merge(a)
        assert a.count == 4
        assert a.sum == pytest.approx(8.0)
        assert sorted(a.values) == [1.0, 1.0, 3.0, 3.0]

    def test_merged_aggregate_keeps_registry_identity(self):
        # The relay-summary pattern: per-node histograms merged into a
        # get-or-create aggregate; the (name, labels) key stays one
        # instrument no matter how many merges fold into it.
        registry = MetricsRegistry()
        registry.histogram("sync", node="a").observe(1.0)
        registry.histogram("sync", node="b").observe(3.0)
        aggregate = registry.histogram("sync_tier", tier="1")
        for source in registry.histograms_named("sync"):
            aggregate.merge(source)
        again = registry.histogram("sync_tier", tier="1")
        assert again is aggregate
        assert again.count == 2
        assert registry.find("sync_tier", tier="1") is aggregate


class TestHistogramMergeProperties:
    """Merge edge cases the tier/fleet rollups depend on."""

    def test_mismatched_label_sets_merge_samples_not_labels(self):
        # Rollups fold per-node histograms into aggregates carrying
        # entirely different labels; merge must combine distributions
        # while leaving the target's identity (name, labels) alone.
        registry = MetricsRegistry()
        node = registry.histogram("sync", node="r1", segment="lan")
        node.observe(1.0)
        aggregate = registry.histogram("sync_tier", tier="2")
        aggregate.observe(5.0)
        aggregate.merge(node)
        assert aggregate.labels == (("tier", "2"),)
        assert aggregate.count == 2
        assert sorted(aggregate.values) == [1.0, 5.0]
        # The source is untouched — merge is strictly one-way.
        assert node.labels == (("node", "r1"), ("segment", "lan"))
        assert node.values == [1.0]

    def test_empty_into_nonempty_preserves_extremes(self):
        a = Histogram("lat", ())
        a.observe(2.0)
        a.observe(9.0)
        a.merge(Histogram("lat", ()))
        assert (a.count, a.min, a.max) == (2, 2.0, 9.0)
        assert a.sum == pytest.approx(11.0)

    def test_merge_across_the_window_boundary(self):
        # Folding more samples than the window holds: all-time totals
        # keep everything, the retained window keeps only the newest —
        # and the incoming samples land *after* the existing ones.
        a = Histogram("lat", (), window=4)
        b = Histogram("lat", (), window=4)
        for value in (1.0, 2.0, 3.0):
            a.observe(value)
        for value in (10.0, 20.0, 30.0):
            b.observe(value)
        a.merge(b)
        assert a.count == 6
        assert a.sum == pytest.approx(66.0)
        assert len(a.values) == 4
        assert a.values == [3.0, 10.0, 20.0, 30.0]
        assert (a.min, a.max) == (1.0, 30.0)  # extremes survive eviction

    def test_exact_window_fill_keeps_every_sample(self):
        a = Histogram("lat", (), window=4)
        b = Histogram("lat", (), window=4)
        a.observe(1.0)
        a.observe(2.0)
        b.observe(3.0)
        b.observe(4.0)
        a.merge(b)
        assert a.values == [1.0, 2.0, 3.0, 4.0]

    @settings(max_examples=60, deadline=None)
    @given(
        left=st.lists(st.floats(0.0, 1e6, allow_nan=False), max_size=24),
        right=st.lists(st.floats(0.0, 1e6, allow_nan=False), max_size=24),
    )
    def test_merge_is_commutative_up_to_window_order(self, left, right):
        # merge(a, b) and merge(b, a) must agree on every aggregate the
        # reports read — totals, extremes, and the retained sample
        # multiset (order may differ; both fit inside the window here).
        ab = Histogram("lat", ())
        ba = Histogram("lat", ())
        other_ab = Histogram("lat", ())
        other_ba = Histogram("lat", ())
        for value in left:
            ab.observe(value)
            other_ba.observe(value)
        for value in right:
            other_ab.observe(value)
            ba.observe(value)
        ab.merge(other_ab)
        ba.merge(other_ba)
        assert ab.count == ba.count
        assert ab.sum == pytest.approx(ba.sum)
        assert ab.min == ba.min
        assert ab.max == ba.max
        assert sorted(ab.values) == sorted(ba.values)
        assert ab.p95 == ba.p95  # nearest-rank is order-independent


class TestStatsFacadeMapping:
    """The facade must be indistinguishable from the dict it replaced."""

    def build(self):
        registry = MetricsRegistry()
        facade = StatsFacade(
            registry,
            prefix="agent_",
            labels={"node": "bob"},
            counters=("polls",),
            gauges=("last_seconds",),
        )
        return registry, facade

    def test_equality_with_plain_dicts(self):
        _registry, facade = self.build()
        facade.inc("polls", 2)
        facade.set("last_seconds", 0.5)
        assert facade == {"polls": 2, "last_seconds": 0.5}
        assert facade != {"polls": 2, "last_seconds": 0.6}
        assert facade != {"polls": 2}

    def test_get_with_defaults(self):
        _registry, facade = self.build()
        assert facade.get("polls") == 0
        assert facade.get("absent") is None
        assert facade.get("absent", 7) == 7

    def test_iteration_matches_len_and_keys(self):
        _registry, facade = self.build()
        assert len(list(facade)) == len(facade) == 2
        assert set(facade.keys()) == {"polls", "last_seconds"}
        assert sorted(facade.items()) == [("last_seconds", 0.0), ("polls", 0)]
        assert 0 in list(facade.values())


class TestWindowBoundaries:
    """Eviction exactly at the window edge, and the percentiles there.

    The histogram window is *count*-based: a large sim-time jump with no
    traffic evicts nothing (that is pinned below).  Time-based aging is
    the HealthMonitor's job — its staleness rings prune by sim-time on
    both write and read.
    """

    def test_exactly_full_window_evicts_nothing(self):
        registry = MetricsRegistry(histogram_window=8)
        histogram = registry.histogram("lat")
        for value in range(8):
            histogram.observe(float(value))
        assert histogram.values == [float(v) for v in range(8)]

    def test_one_past_the_boundary_evicts_exactly_the_oldest(self):
        registry = MetricsRegistry(histogram_window=8)
        histogram = registry.histogram("lat")
        for value in range(9):
            histogram.observe(float(value))
        assert histogram.values == [float(v) for v in range(1, 9)]
        # All-time aggregates remember the evicted sample.
        assert histogram.count == 9
        assert histogram.min == 0.0

    def test_boundary_percentiles_cover_only_the_window(self):
        registry = MetricsRegistry(histogram_window=100)
        histogram = registry.histogram("lat")
        for value in range(200):
            histogram.observe(float(value))
        # Retained window is 100..199; nearest-rank over those 100.
        assert histogram.p50 == 149.0
        assert histogram.p95 == 194.0
        assert histogram.p99 == 198.0
        assert histogram.percentile(100) == 199.0
        assert histogram.percentile(0) == 100.0

    def test_nearest_rank_rounding_at_the_rank_edge(self):
        histogram = MetricsRegistry().histogram("lat")
        for value in range(20):
            histogram.observe(float(value))
        # ceil(20 * p / 100): p=94 and p=95 share rank 19; p=96 tips to 20.
        assert histogram.percentile(94) == 18.0
        assert histogram.p95 == 18.0
        assert histogram.percentile(96) == 19.0

    def test_merge_overflow_keeps_the_newest_samples(self):
        registry = MetricsRegistry(histogram_window=4)
        a = registry.histogram("lat", node="a")
        b = registry.histogram("lat", node="b")
        for value in range(4):
            a.observe(float(value))
        for value in range(10, 14):
            b.observe(float(value))
        a.merge(b)
        # The window held a's four samples; folding b's four in evicted
        # them — newest (b's) survive, totals keep everything.
        assert a.values == [10.0, 11.0, 12.0, 13.0]
        assert a.count == 8
        assert a.min == 0.0

    def test_idle_time_jump_evicts_nothing(self):
        # Pinned contract: count-based windows are sim-time-blind.  An
        # idle session that jumps hours ahead still reports the same
        # percentiles until fresh observations displace the old ones.
        registry = MetricsRegistry(histogram_window=4)
        histogram = registry.histogram("lat")
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.observe(value)
        before = (histogram.values, histogram.p95)
        # ... hours of idle sim-time pass; no observe() calls ...
        assert (histogram.values, histogram.p95) == before
        histogram.observe(100.0)
        assert histogram.values == [2.0, 3.0, 4.0, 100.0]
        assert histogram.p95 == 100.0
