"""End-to-end tracing: header propagation, span trees, exporters.

Covers the observability tentpole's pipeline layer: the ``X-RCB-Trace``
header roundtrip, zero bytes on the wire when tracing is off, one
connected span tree per document state in flat sessions, trace
continuity through a branching-4 depth-2 relay tree — including after a
relay dies and its orphans re-attach — and the JSONL / Chrome
trace-event exports.
"""

import json

from repro.browser import Browser
from repro.core import CoBrowsingSession
from repro.html import Text
from repro.net import LAN_PROFILE, Host, Network
from repro.obs import (
    SpanContext,
    Tracer,
    chrome_trace,
    format_trace_header,
    parse_trace_header,
    spans_to_jsonl,
    write_chrome_trace,
    write_spans_jsonl,
)
from repro.sim import Simulator
from repro.webserver import OriginServer, StaticSite

PAGE = (
    "<html><head><title>Trace test</title></head>"
    "<body><h1 id='headline'>News</h1>"
    + "".join("<p id='p%d'>paragraph %d body</p>" % (i, i) for i in range(8))
    + "</body></html>"
)


def build_world(participants=2, **session_kwargs):
    sim = Simulator()
    network = Network(sim)
    site = StaticSite("site.com")
    site.add_page("/", PAGE)
    OriginServer(network, "site.com", site.handle)
    host_pc = Host(network, "host-pc", LAN_PROFILE, segment="campus")
    host_browser = Browser(host_pc, name="bob")
    session_kwargs.setdefault("poll_interval", 0.2)
    session = CoBrowsingSession(host_browser, **session_kwargs)
    browsers = []
    for index in range(participants):
        pc = Host(network, "part-pc-%d" % index, LAN_PROFILE, segment="campus")
        browsers.append(Browser(pc, name="p%d" % index))
    return sim, session, browsers


def run(sim, generator, limit=1e9):
    return sim.run_until_complete(sim.process(generator), limit=limit)


def join_all(session, browsers):
    members = []
    for browser in browsers:
        member = yield from session.join(browser)
        members.append(member)
    return members


def edit_paragraph(browser, index, text):
    def mutate(document):
        target = document.get_element_by_id("p%d" % index)
        target.remove_all_children()
        target.append_child(Text(text))

    browser.mutate_document(mutate)


def chain_to_root(tracer, span):
    """The parent chain from ``span`` up to its trace root (inclusive)."""
    chain = [span]
    while chain[-1].parent_id is not None:
        parent = tracer.span_by_id(chain[-1].parent_id)
        assert parent is not None, "dangling parent_id %r" % chain[-1].parent_id
        chain.append(parent)
    return chain


class TestTraceHeader:
    def test_roundtrip(self):
        context = SpanContext("t7", "s42")
        assert format_trace_header(context) == "t7;s42"
        assert parse_trace_header("t7;s42") == context

    def test_whitespace_is_tolerated(self):
        assert parse_trace_header(" t7 ; s42 ") == SpanContext("t7", "s42")

    def test_malformed_is_advisory_none(self):
        for bad in (None, "", "t7", ";", "t7;", ";s42"):
            assert parse_trace_header(bad) is None


class TestTracer:
    def test_parentless_span_roots_a_new_trace(self):
        tracer = Tracer()
        a = tracer.start_span("host.generate", t=1.0, node="bob")
        b = tracer.start_span("host.generate", t=2.0, node="bob")
        assert a.parent_id is None
        assert a.trace_id != b.trace_id
        assert tracer.trace_ids() == [a.trace_id, b.trace_id]

    def test_child_joins_parent_trace_via_span_or_context(self):
        tracer = Tracer()
        root = tracer.start_span("host.generate", t=0.0, node="bob")
        by_span = tracer.start_span("host.serve", t=0.1, parent=root, node="bob")
        by_context = tracer.start_span(
            "snippet.apply", t=0.2, parent=by_span.context, node="p0"
        )
        assert by_span.trace_id == root.trace_id
        assert by_span.parent_id == root.span_id
        assert by_context.parent_id == by_span.span_id
        assert [s.span_id for s in tracer.spans_for(root.trace_id)] == [
            root.span_id,
            by_span.span_id,
            by_context.span_id,
        ]

    def test_finish_and_duration(self):
        tracer = Tracer()
        span = tracer.start_span("host.serve", t=1.5, node="bob", bytes=10)
        assert not span.finished
        assert span.duration == 0.0
        span.finish(2.0)
        span.finish(9.9)  # idempotent
        assert span.end == 2.0
        assert span.duration == 0.5
        assert span.tags["bytes"] == 10

    def test_max_spans_retires_the_oldest(self):
        tracer = Tracer(max_spans=3)
        for n in range(5):
            tracer.start_span("s%d" % n, t=float(n))
        assert len(tracer) == 3
        assert [s.name for s in tracer.spans] == ["s2", "s3", "s4"]

    def test_clear(self):
        tracer = Tracer()
        tracer.start_span("x", t=0.0)
        tracer.clear()
        assert tracer.spans == []


class TestWireFormat:
    def test_untraced_session_emits_no_trace_header(self):
        """tracer=None is the default, and must add zero protocol bytes:
        content responses carry no ``X-RCB-Trace`` header at all."""
        sim, session, browsers = build_world(participants=1)
        captured = []

        def scenario():
            (snippet,) = yield from join_all(session, browsers)
            original = snippet._process_response

            def spy(xml_text, poll_started, trace_header=None):
                captured.append(trace_header)
                return original(xml_text, poll_started, trace_header)

            snippet._process_response = spy
            yield from session.host_navigate("http://site.com/")
            yield from session.wait_until_synced()

        run(sim, scenario())
        assert session.tracer is None
        assert captured  # the spy saw the content response
        assert all(header is None for header in captured)
        session.close()

    def test_traced_session_carries_context_on_content_responses(self):
        tracer = Tracer()
        sim, session, browsers = build_world(participants=1, tracer=tracer)
        captured = []

        def scenario():
            (snippet,) = yield from join_all(session, browsers)
            original = snippet._process_response

            def spy(xml_text, poll_started, trace_header=None):
                captured.append(trace_header)
                return original(xml_text, poll_started, trace_header)

            snippet._process_response = spy
            yield from session.host_navigate("http://site.com/")
            yield from session.wait_until_synced()

        run(sim, scenario())
        contexts = [parse_trace_header(h) for h in captured if h is not None]
        assert contexts  # at least the initial content response was tagged
        serving = tracer.span_by_id(contexts[0].span_id)
        assert serving.name == "host.serve"
        assert contexts[0].trace_id == serving.trace_id
        session.close()


class TestFlatSessionTrace:
    def test_one_document_state_is_one_connected_trace(self):
        tracer = Tracer()
        sim, session, browsers = build_world(participants=2, tracer=tracer)

        def scenario():
            yield from join_all(session, browsers)
            yield from session.host_navigate("http://site.com/")
            yield from session.wait_until_synced()

        run(sim, scenario())
        assert len(tracer.trace_ids()) == 1
        (trace_id,) = tracer.trace_ids()
        spans = tracer.spans_for(trace_id)
        roots = [s for s in spans if s.parent_id is None]
        assert [r.name for r in roots] == ["host.generate"]
        assert roots[0].node == "bob"
        applies = [s for s in spans if s.name == "snippet.apply"]
        assert sorted(s.node for s in applies) == ["p0", "p1"]
        for apply_span in applies:
            chain = chain_to_root(tracer, apply_span)
            assert [s.name for s in chain] == [
                "snippet.apply",
                "host.serve",
                "host.generate",
            ]
            assert apply_span.finished
            assert apply_span.tags["kind"] == "full"
        session.close()

    def test_spans_are_timestamped_in_sim_time(self):
        tracer = Tracer()
        sim, session, browsers = build_world(participants=1, tracer=tracer)

        def scenario():
            yield from join_all(session, browsers)
            yield from session.host_navigate("http://site.com/")
            yield from session.wait_until_synced()

        run(sim, scenario())
        (apply_span,) = [s for s in tracer.spans if s.name == "snippet.apply"]
        (serve_span,) = [s for s in tracer.spans if s.name == "host.serve"]
        # Serving starts when the poll arrives; the apply happens after
        # the response crossed the network — strictly later in sim-time.
        assert serve_span.start <= apply_span.start
        assert apply_span.end <= sim.now
        # M5-style compute rides along as a wall-clock tag, not sim-time.
        assert "wall_seconds" in apply_span.tags
        session.close()

    def test_subsequent_edit_roots_a_second_trace_with_delta_spans(self):
        tracer = Tracer()
        sim, session, browsers = build_world(participants=1, tracer=tracer)

        def scenario():
            yield from join_all(session, browsers)
            yield from session.host_navigate("http://site.com/")
            yield from session.wait_until_synced()
            edit_paragraph(session.host_browser, 3, "edited once")
            yield from session.wait_until_synced()

        run(sim, scenario())
        assert len(tracer.trace_ids()) == 2
        second = tracer.spans_for(tracer.trace_ids()[-1])
        names = [s.name for s in second]
        assert "host.delta_diff" in names
        (apply_span,) = [s for s in second if s.name == "snippet.apply"]
        assert apply_span.tags["kind"] == "delta"
        assert chain_to_root(tracer, apply_span)[-1].name == "host.generate"
        session.close()


class TestRelayedTrace:
    def test_branching4_depth2_tree_yields_one_connected_trace(self):
        tracer = Tracer()
        sim, session, browsers = build_world(participants=8, tracer=tracer)
        session.fanout_tree(branching=4)

        def scenario():
            yield from join_all(session, browsers)
            yield from session.host_navigate("http://site.com/")
            yield from session.wait_until_synced()

        run(sim, scenario())
        assert session.tree_depth() == 2
        assert len(tracer.trace_ids()) == 1
        (trace_id,) = tracer.trace_ids()
        spans = tracer.spans_for(trace_id)
        roots = [s for s in spans if s.parent_id is None]
        assert [r.name for r in roots] == ["host.generate"]
        applies = {s.node: s for s in spans if s.name == "relay.apply"}
        assert sorted(applies) == ["p%d" % n for n in range(8)]
        for node, apply_span in applies.items():
            chain = chain_to_root(tracer, apply_span)
            names = [s.name for s in chain]
            depth = session._nodes[node].depth
            if depth == 1:  # directly under the root agent
                assert names == ["relay.apply", "host.serve", "host.generate"]
            else:  # tier 2: re-served by a tier-1 relay
                assert names == [
                    "relay.apply",
                    "relay.serve",
                    "relay.apply",
                    "host.serve",
                    "host.generate",
                ]
                assert chain[1].node == session._nodes[node].parent
        session.close()

    def test_trace_continuity_survives_relay_death_and_reattach(self):
        tracer = Tracer()
        sim, session, browsers = build_world(participants=8, tracer=tracer)
        session.fanout_tree(branching=4)

        def scenario():
            yield from join_all(session, browsers)
            yield from session.host_navigate("http://site.com/")
            yield from session.wait_until_synced()
            session.fail_relay("p0")
            yield sim.timeout(20.0)  # orphan detects, backs off, re-attaches
            edit_paragraph(session.host_browser, 5, "after the failure")
            yield from session.wait_until_synced(timeout=30.0)

        run(sim, scenario())
        # p4 was p0's child; it re-homed under the root agent.
        assert session._nodes["p4"].parent == ""
        # The post-failure document state is again ONE connected trace
        # that reaches every surviving member, including the orphan.
        last = tracer.spans_for(tracer.trace_ids()[-1])
        roots = [s for s in last if s.parent_id is None]
        assert [r.name for r in roots] == ["host.generate"]
        survivors = sorted(session.relays)
        applied = sorted({s.node for s in last if s.name == "relay.apply"})
        assert applied == survivors
        assert "p0" not in applied
        orphan_chain = chain_to_root(
            tracer, [s for s in last if s.name == "relay.apply" and s.node == "p4"][0]
        )
        assert [s.name for s in orphan_chain] == [
            "relay.apply",
            "host.serve",
            "host.generate",
        ]
        session.close()


class TestExports:
    def traced_spans(self):
        tracer = Tracer()
        root = tracer.start_span("host.generate", t=0.5, node="bob", doc_time=1)
        root.finish(0.5)
        serve = tracer.start_span(
            "host.serve", t=0.75, parent=root, node="bob", kind="full", bytes=64
        )
        serve.finish(1.0)
        tracer.start_span("snippet.apply", t=1.0, parent=serve, node="p0").finish(1.25)
        return tracer

    def test_jsonl_one_valid_object_per_span(self):
        tracer = self.traced_spans()
        lines = spans_to_jsonl(tracer).splitlines()
        assert len(lines) == 3
        rows = [json.loads(line) for line in lines]
        assert rows[0]["name"] == "host.generate"
        assert rows[0]["parent_id"] is None
        assert rows[1]["parent_id"] == rows[0]["span_id"]
        assert rows[2]["duration"] == 0.25
        assert rows[1]["tags"] == {"kind": "full", "bytes": 64}

    def test_write_jsonl_roundtrips_through_the_file(self, tmp_path):
        tracer = self.traced_spans()
        path = tmp_path / "spans.jsonl"
        assert write_spans_jsonl(tracer, str(path)) == 3
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert [row["name"] for row in rows] == [
            "host.generate",
            "host.serve",
            "snippet.apply",
        ]

    def test_chrome_trace_document_shape(self):
        document = chrome_trace(self.traced_spans())
        events = document["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 3
        # One named thread per pipeline node, all in one process.
        assert {m["args"]["name"] for m in metadata} == {"bob", "p0"}
        assert {e["pid"] for e in events} == {1}
        serve = [e for e in complete if e["name"] == "host.serve"][0]
        assert serve["ts"] == 750000.0
        assert serve["dur"] == 250000.0
        assert serve["cat"] == serve["args"]["trace_id"]
        assert serve["args"]["parent_id"] is not None

    def test_write_chrome_trace_is_loadable_json(self, tmp_path):
        path = tmp_path / "trace.json"
        assert write_chrome_trace(self.traced_spans(), str(path)) == 3
        document = json.loads(path.read_text())
        assert document["displayTimeUnit"] == "ms"
        assert sum(1 for e in document["traceEvents"] if e["ph"] == "X") == 3

    def test_end_to_end_session_exports_cleanly(self, tmp_path):
        tracer = Tracer()
        sim, session, browsers = build_world(participants=4, tracer=tracer)
        session.fanout_tree(branching=2)

        def scenario():
            yield from join_all(session, browsers)
            yield from session.host_navigate("http://site.com/")
            yield from session.wait_until_synced()

        run(sim, scenario())
        jsonl_path = tmp_path / "session.jsonl"
        chrome_path = tmp_path / "session.json"
        count = write_spans_jsonl(tracer, str(jsonl_path))
        assert count == len(tracer.spans) > 0
        assert write_chrome_trace(tracer, str(chrome_path)) == count
        document = json.loads(chrome_path.read_text())
        complete = [e for e in document["traceEvents"] if e["ph"] == "X"]
        # Every event of the session belongs to the single trace.
        assert {e["cat"] for e in complete} == set(tracer.trace_ids())
        session.close()
