"""Soak tests: long randomized sessions stay correct and bounded."""

import pytest

from repro.core import CoBrowsingSession
from repro.workloads import build_lan
from repro.workloads.surf import SurfOperation, generate_trace, run_surf


class TestTraceGeneration:
    def test_deterministic(self):
        first = generate_trace(7, 50)
        second = generate_trace(7, 50)
        assert [(o.kind, o.argument) for o in first] == [
            (o.kind, o.argument) for o in second
        ]

    def test_starts_with_a_visit(self):
        assert generate_trace(1, 10)[0].kind == "visit"

    def test_length_respected(self):
        assert len(generate_trace(3, 25)) == 25
        with pytest.raises(ValueError):
            generate_trace(3, 0)

    def test_mixes_operation_kinds(self):
        kinds = {op.kind for op in generate_trace(11, 200)}
        assert kinds == {"visit", "mutate", "idle", "participant_fill"}

    def test_bad_operation_rejected(self):
        with pytest.raises(ValueError):
            SurfOperation("teleport")


class TestSoakSession:
    def run_soak(self, seed, length, cache_mode=True):
        testbed = build_lan()
        session = CoBrowsingSession(
            testbed.host_browser, cache_mode=cache_mode, poll_interval=0.5
        )
        trace = generate_trace(seed, length)
        report = testbed.run(
            run_surf(testbed, session, trace), limit=1e7
        )
        return testbed, session, report

    def test_fifty_operation_session_stays_synchronized(self):
        _testbed, _session, report = self.run_soak(seed=42, length=50)
        assert report.syncs_verified >= report.pages_visited
        assert report.pages_visited > 5

    def test_non_cache_mode_soak(self):
        _testbed, _session, report = self.run_soak(seed=43, length=30, cache_mode=False)
        assert report.pages_visited > 3
        assert report.syncs_verified > 0

    def test_agent_state_stays_bounded(self):
        """Per-state envelope caches and participant queues do not grow
        with session length."""
        _testbed, session, _report = self.run_soak(seed=44, length=60)
        agent = session.agent
        # Only the current document state's envelopes are retained.
        assert len(agent._generated_xml) <= 1
        for state in agent.participants.values():
            assert state.outbound_actions == []
        assert agent.pending_actions == []

    def test_generation_count_tracks_document_states(self):
        """Generation runs at most once per (document state, mode)."""
        testbed, session, report = self.run_soak(seed=45, length=40)
        changes = report.pages_visited + report.mutations + report.participant_fills
        # Form fills mutate the host document too, so allow them; every
        # generation must correspond to some document change.
        assert session.agent.generation_count <= 2 * changes + 1

    def test_deterministic_replay(self):
        first = self.run_soak(seed=46, length=25)[2]
        second = self.run_soak(seed=46, length=25)[2]
        assert first.sim_seconds == second.sim_seconds
        assert first.pages_visited == second.pages_visited
        assert first.syncs_verified == second.syncs_verified
