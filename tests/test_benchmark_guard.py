"""The CI benchmark regression guard: parser and verdict logic.

``benchmarks/check_regression.py`` and ``benchmarks/bench_compare.py``
are standalone scripts (no package), so they are loaded here by path.
"""

import importlib.util
import json
import os
import sys

import pytest

_SCRIPT = os.path.join(
    os.path.dirname(__file__), os.pardir, "benchmarks", "check_regression.py"
)
_spec = importlib.util.spec_from_file_location("check_regression", _SCRIPT)
guard = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("check_regression", guard)
_spec.loader.exec_module(guard)

_COMPARE = os.path.join(os.path.dirname(_SCRIPT), "bench_compare.py")
_cspec = importlib.util.spec_from_file_location("bench_compare", _COMPARE)
bench_compare = importlib.util.module_from_spec(_cspec)
_cspec.loader.exec_module(bench_compare)

BASELINE_LINE = (
    "Full-stack surf: 14 pages + 10 mutations in 2.51 s wall "
    "(9.6 operations/s); 63.3 simulated seconds"
)


class TestParser:
    def test_parses_the_committed_rendering_format(self):
        assert guard.parse_throughput(BASELINE_LINE) == 9.6

    def test_parses_integer_and_multiline_renderings(self):
        assert guard.parse_throughput("header\nblah (12 operations/s) tail\n") == 12.0

    def test_rejects_renderings_without_a_figure(self):
        with pytest.raises(guard.GuardError):
            guard.parse_throughput("Full-stack surf: no figure here")

    def test_parses_the_actual_committed_baseline(self):
        baseline = os.path.join(
            os.path.dirname(_SCRIPT), "results", "harness_throughput.txt"
        )
        with open(baseline) as handle:
            assert guard.parse_throughput(handle.read()) > 0


class TestVerdict:
    def test_small_slowdown_within_threshold_passes(self):
        verdict = guard.check(10.0, 8.0, threshold=0.25)
        assert "OK" in verdict

    def test_large_slowdown_fails(self):
        with pytest.raises(guard.GuardError, match="regressed"):
            guard.check(10.0, 7.0, threshold=0.25)

    def test_speedup_passes_and_hints_at_baseline_refresh(self):
        verdict = guard.check(10.0, 20.0, threshold=0.25)
        assert "OK" in verdict
        assert "refreshing" in verdict

    def test_zero_baseline_is_an_error(self):
        with pytest.raises(guard.GuardError):
            guard.check(0.0, 5.0, threshold=0.25)


class TestMain:
    def test_end_to_end_pass_and_fail(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.txt"
        current = tmp_path / "current.txt"
        baseline.write_text(BASELINE_LINE + "\n")
        current.write_text(BASELINE_LINE.replace("9.6", "9.1") + "\n")
        assert guard.main([str(baseline), str(current)]) == 0

        current.write_text(BASELINE_LINE.replace("9.6", "3.0") + "\n")
        assert guard.main([str(baseline), str(current)]) == 1
        assert "regressed" in capsys.readouterr().err

    def test_missing_file_is_a_clean_failure(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.txt"
        baseline.write_text(BASELINE_LINE + "\n")
        assert guard.main([str(baseline), str(tmp_path / "absent.txt")]) == 1
        assert "guard" in capsys.readouterr().err


class TestFloor:
    def test_above_floor_passes(self):
        assert "OK" in guard.check_floor(1200.0, 100.0)

    def test_below_floor_fails(self):
        with pytest.raises(guard.GuardError, match="below the floor"):
            guard.check_floor(50.0, 100.0)

    def test_single_file_floor_mode(self, tmp_path, capsys):
        rendering = tmp_path / "ablation.txt"
        rendering.write_text("incremental generation throughput: (250.0 operations/s)\n")
        assert guard.main([str(rendering), "--floor", "100"]) == 0
        assert guard.main([str(rendering), "--floor", "9999"]) == 1
        assert "below the floor" in capsys.readouterr().err

    def test_floor_composes_with_relative_check(self, tmp_path):
        baseline = tmp_path / "baseline.txt"
        current = tmp_path / "current.txt"
        baseline.write_text(BASELINE_LINE + "\n")
        current.write_text(BASELINE_LINE.replace("9.6", "9.1") + "\n")
        assert guard.main([str(baseline), str(current), "--floor", "5"]) == 0
        assert guard.main([str(baseline), str(current), "--floor", "9.5"]) == 1


class TestFloorsSpec:
    """The ``--spec floors.json`` multi-metric mode."""

    def write_spec(self, tmp_path, entries):
        spec = tmp_path / "floors.json"
        spec.write_text(json.dumps({"floors": entries}))
        return spec

    def test_custom_pattern_extracts_the_named_figure(self, tmp_path):
        rendering = tmp_path / "serve.txt"
        rendering.write_text(
            "Batched serve (MSN, N=256): 151738.2 serves/s vs legacy "
            "27334.6 serves/s (5.6x speedup)\n"
        )
        value = guard.parse_metric(
            rendering.read_text(), r"N=256\): ([0-9.]+) serves/s"
        )
        assert value == 151738.2

    def test_all_entries_pass(self, tmp_path, capsys):
        (tmp_path / "a.txt").write_text("x (250.0 operations/s)\n")
        (tmp_path / "b.txt").write_text("y: 42.5 widgets/s\n")
        spec = self.write_spec(
            tmp_path,
            [
                {"name": "a", "file": "a.txt", "floor": 100},
                {
                    "name": "b",
                    "file": "b.txt",
                    "pattern": r"([0-9.]+) widgets/s",
                    "floor": 40,
                    "unit": "widgets/s",
                },
            ],
        )
        assert guard.main(["--spec", str(spec)]) == 0
        table = capsys.readouterr().out
        assert "a" in table and "b" in table
        assert table.count("OK") == 2

    def test_one_breach_fails_but_reports_every_entry(self, tmp_path, capsys):
        (tmp_path / "a.txt").write_text("x (250.0 operations/s)\n")
        (tmp_path / "b.txt").write_text("y (3.0 operations/s)\n")
        spec = self.write_spec(
            tmp_path,
            [
                {"name": "a", "file": "a.txt", "floor": 100},
                {"name": "b", "file": "b.txt", "floor": 100},
            ],
        )
        assert guard.main(["--spec", str(spec)]) == 1
        captured = capsys.readouterr()
        assert "OK" in captured.out and "FAIL" in captured.out
        assert "below the floor" in captured.err

    def test_missing_rendering_is_an_error_row_not_a_crash(self, tmp_path, capsys):
        (tmp_path / "a.txt").write_text("x (250.0 operations/s)\n")
        spec = self.write_spec(
            tmp_path,
            [
                {"name": "a", "file": "a.txt", "floor": 100},
                {"name": "gone", "file": "absent.txt", "floor": 100},
            ],
        )
        assert guard.main(["--spec", str(spec)]) == 1
        assert "ERROR" in capsys.readouterr().out

    def test_paths_resolve_against_the_spec_directory(self, tmp_path, monkeypatch):
        nested = tmp_path / "nested"
        nested.mkdir()
        (nested / "a.txt").write_text("x (250.0 operations/s)\n")
        spec = self.write_spec(nested, [{"name": "a", "file": "a.txt", "floor": 100}])
        monkeypatch.chdir(tmp_path)
        assert guard.main(["--spec", str(spec)]) == 0

    def test_spec_rejects_extra_positional_files(self, tmp_path):
        spec = self.write_spec(tmp_path, [{"name": "a", "file": "a.txt", "floor": 1}])
        with pytest.raises(SystemExit):
            guard.main(["base.txt", "--spec", str(spec)])

    def test_empty_spec_is_an_error(self, tmp_path, capsys):
        spec = tmp_path / "floors.json"
        spec.write_text(json.dumps({"floors": []}))
        assert guard.main(["--spec", str(spec)]) == 1
        assert "no 'floors' list" in capsys.readouterr().err

    def test_committed_spec_passes_against_committed_baselines(self, capsys):
        committed = os.path.join(os.path.dirname(_SCRIPT), "floors.json")
        assert guard.main(["--spec", committed]) == 0
        assert "serve-batched-n256" in capsys.readouterr().out


class TestBenchCompare:
    """The nightly markdown drift report."""

    def fill(self, directory, name, line):
        directory.mkdir(exist_ok=True)
        (directory / name).write_text(line + "\n")

    def test_reports_change_and_flags_regressions(self, tmp_path):
        self.fill(tmp_path / "base", "surf.txt", "a (10.0 operations/s)")
        self.fill(tmp_path / "cur", "surf.txt", "a (4.0 operations/s)")
        report = bench_compare.compare(
            str(tmp_path / "base"), str(tmp_path / "cur")
        )
        assert "| surf.txt | 10.0 ops/s | 4.0 ops/s | -60.0%" in report
        assert "⚠️" in report

    def test_small_drift_is_not_flagged(self, tmp_path):
        self.fill(tmp_path / "base", "surf.txt", "a (10.0 operations/s)")
        self.fill(tmp_path / "cur", "surf.txt", "a (9.5 operations/s)")
        report = bench_compare.compare(
            str(tmp_path / "base"), str(tmp_path / "cur")
        )
        assert "-5.0%" in report
        assert "⚠️" not in report

    def test_unparsable_renderings_compare_by_content(self, tmp_path):
        self.fill(tmp_path / "base", "table.txt", "col1 col2")
        self.fill(tmp_path / "cur", "table.txt", "col1 col3")
        report = bench_compare.compare(
            str(tmp_path / "base"), str(tmp_path / "cur")
        )
        assert "| table.txt | – | – | changed |" in report

    def test_json_artifacts_compare_canonically(self, tmp_path):
        # Key order and indentation churn must not read as drift...
        self.fill(tmp_path / "base", "frontier.json", '{"a": 1, "b": 2}')
        self.fill(tmp_path / "cur", "frontier.json", '{\n "b": 2,\n "a": 1\n}')
        report = bench_compare.compare(
            str(tmp_path / "base"), str(tmp_path / "cur")
        )
        assert "| frontier.json | – | – | same |" in report
        # ...while a changed value still does.
        self.fill(tmp_path / "cur", "frontier.json", '{"a": 1, "b": 3}')
        report = bench_compare.compare(
            str(tmp_path / "base"), str(tmp_path / "cur")
        )
        assert "| frontier.json | – | – | changed |" in report

    def test_malformed_json_falls_back_to_raw_text(self, tmp_path):
        self.fill(tmp_path / "base", "broken.json", "{not json")
        self.fill(tmp_path / "cur", "broken.json", "{not json")
        report = bench_compare.compare(
            str(tmp_path / "base"), str(tmp_path / "cur")
        )
        assert "| broken.json | – | – | same |" in report

    def test_missing_files_are_called_out(self, tmp_path):
        self.fill(tmp_path / "base", "old.txt", "a (1.0 operations/s)")
        self.fill(tmp_path / "cur", "new.txt", "a (1.0 operations/s)")
        report = bench_compare.compare(
            str(tmp_path / "base"), str(tmp_path / "cur")
        )
        assert "| new.txt | | | missing in baseline |" in report
        assert "| old.txt | | | missing in current |" in report

    def test_renamed_json_metric_keys_become_na_rows(self, tmp_path):
        # A metric renamed between the committed baseline and tonight's
        # code must not raise — each side-only key gets an n/a row.
        self.fill(tmp_path / "base", "fleet.json", '{"stale_p95": 120, "polls": 4}')
        self.fill(tmp_path / "cur", "fleet.json", '{"staleness_p95": 130, "polls": 4}')
        report = bench_compare.compare(
            str(tmp_path / "base"), str(tmp_path / "cur")
        )
        assert "| fleet.json | – | – | changed |" in report
        assert "| fleet.json:stale_p95 | 120 | n/a | n/a |" in report
        assert "| fleet.json:staleness_p95 | n/a | 130 | n/a |" in report

    def test_nested_missing_keys_use_dotted_paths(self, tmp_path):
        self.fill(tmp_path / "base", "view.json", '{"fleet": {"polls": 9}}')
        self.fill(
            tmp_path / "cur", "view.json", '{"fleet": {"polls": 9, "resyncs": 1}}'
        )
        report = bench_compare.compare(
            str(tmp_path / "base"), str(tmp_path / "cur")
        )
        assert "| view.json:fleet.resyncs | n/a | 1 | n/a |" in report

    def test_renamed_keys_keep_exit_zero(self, tmp_path, capsys):
        self.fill(tmp_path / "base", "fleet.json", '{"old_key": 1}')
        self.fill(tmp_path / "cur", "fleet.json", '{"new_key": 2}')
        assert (
            bench_compare.main([str(tmp_path / "base"), str(tmp_path / "cur")]) == 0
        )
        out = capsys.readouterr().out
        assert "n/a" in out

    def test_value_only_json_drift_stays_a_changed_row(self, tmp_path):
        # Same schema, different values: no per-key noise, just the
        # canonical changed verdict.
        self.fill(tmp_path / "base", "frontier.json", '{"a": 1}')
        self.fill(tmp_path / "cur", "frontier.json", '{"a": 2}')
        report = bench_compare.compare(
            str(tmp_path / "base"), str(tmp_path / "cur")
        )
        assert "| frontier.json | – | – | changed |" in report
        assert "frontier.json:a" not in report

    def test_main_prints_markdown_and_exits_zero(self, tmp_path, capsys):
        self.fill(tmp_path / "base", "surf.txt", "a (10.0 operations/s)")
        self.fill(tmp_path / "cur", "surf.txt", "a (11.0 operations/s)")
        assert (
            bench_compare.main([str(tmp_path / "base"), str(tmp_path / "cur")]) == 0
        )
        out = capsys.readouterr().out
        assert out.startswith("### Nightly benchmark drift")
