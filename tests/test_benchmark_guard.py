"""The CI benchmark regression guard: parser and verdict logic.

``benchmarks/check_regression.py`` is a standalone script (no package),
so it is loaded here by path.
"""

import importlib.util
import os

import pytest

_SCRIPT = os.path.join(
    os.path.dirname(__file__), os.pardir, "benchmarks", "check_regression.py"
)
_spec = importlib.util.spec_from_file_location("check_regression", _SCRIPT)
guard = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(guard)

BASELINE_LINE = (
    "Full-stack surf: 14 pages + 10 mutations in 2.51 s wall "
    "(9.6 operations/s); 63.3 simulated seconds"
)


class TestParser:
    def test_parses_the_committed_rendering_format(self):
        assert guard.parse_throughput(BASELINE_LINE) == 9.6

    def test_parses_integer_and_multiline_renderings(self):
        assert guard.parse_throughput("header\nblah (12 operations/s) tail\n") == 12.0

    def test_rejects_renderings_without_a_figure(self):
        with pytest.raises(guard.GuardError):
            guard.parse_throughput("Full-stack surf: no figure here")

    def test_parses_the_actual_committed_baseline(self):
        baseline = os.path.join(
            os.path.dirname(_SCRIPT), "results", "harness_throughput.txt"
        )
        with open(baseline) as handle:
            assert guard.parse_throughput(handle.read()) > 0


class TestVerdict:
    def test_small_slowdown_within_threshold_passes(self):
        verdict = guard.check(10.0, 8.0, threshold=0.25)
        assert "OK" in verdict

    def test_large_slowdown_fails(self):
        with pytest.raises(guard.GuardError, match="regressed"):
            guard.check(10.0, 7.0, threshold=0.25)

    def test_speedup_passes_and_hints_at_baseline_refresh(self):
        verdict = guard.check(10.0, 20.0, threshold=0.25)
        assert "OK" in verdict
        assert "refreshing" in verdict

    def test_zero_baseline_is_an_error(self):
        with pytest.raises(guard.GuardError):
            guard.check(0.0, 5.0, threshold=0.25)


class TestMain:
    def test_end_to_end_pass_and_fail(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.txt"
        current = tmp_path / "current.txt"
        baseline.write_text(BASELINE_LINE + "\n")
        current.write_text(BASELINE_LINE.replace("9.6", "9.1") + "\n")
        assert guard.main([str(baseline), str(current)]) == 0

        current.write_text(BASELINE_LINE.replace("9.6", "3.0") + "\n")
        assert guard.main([str(baseline), str(current)]) == 1
        assert "regressed" in capsys.readouterr().err

    def test_missing_file_is_a_clean_failure(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.txt"
        baseline.write_text(BASELINE_LINE + "\n")
        assert guard.main([str(baseline), str(tmp_path / "absent.txt")]) == 1
        assert "guard" in capsys.readouterr().err


class TestFloor:
    def test_above_floor_passes(self):
        assert "OK" in guard.check_floor(1200.0, 100.0)

    def test_below_floor_fails(self):
        with pytest.raises(guard.GuardError, match="below the floor"):
            guard.check_floor(50.0, 100.0)

    def test_single_file_floor_mode(self, tmp_path, capsys):
        rendering = tmp_path / "ablation.txt"
        rendering.write_text("incremental generation throughput: (250.0 operations/s)\n")
        assert guard.main([str(rendering), "--floor", "100"]) == 0
        assert guard.main([str(rendering), "--floor", "9999"]) == 1
        assert "below the floor" in capsys.readouterr().err

    def test_floor_composes_with_relative_check(self, tmp_path):
        baseline = tmp_path / "baseline.txt"
        current = tmp_path / "current.txt"
        baseline.write_text(BASELINE_LINE + "\n")
        current.write_text(BASELINE_LINE.replace("9.6", "9.1") + "\n")
        assert guard.main([str(baseline), str(current), "--floor", "5"]) == 0
        assert guard.main([str(baseline), str(current), "--floor", "9.5"]) == 1
