"""Property-based tests: HTML serialize/parse fixed point, URL resolution."""

import string

from hypothesis import given, settings, strategies as st

from repro.html import (
    Comment,
    Element,
    Text,
    decode_entities,
    escape_attribute,
    escape_text,
    parse_document,
    parse_fragment,
    serialize_document,
    serialize_node,
)
from repro.net import parse_url, resolve_url

# -- strategies ---------------------------------------------------------------

text_data = st.text(
    alphabet=string.ascii_letters + string.digits + " <>&\"'=/.-_;:#?",
    min_size=0,
    max_size=40,
)

attr_names = st.sampled_from(
    ["id", "class", "href", "src", "title", "alt", "data-x", "onclick", "value"]
)
attr_values = st.text(
    alphabet=string.ascii_letters + string.digits + " <>&\"'./-_?=%",
    max_size=30,
)

flow_tags = st.sampled_from(["div", "span", "p", "a", "b", "ul", "li", "table"])
void_tags = st.sampled_from(["br", "img", "input", "hr", "meta", "link"])


def _leaf_nodes():
    return st.one_of(
        text_data.filter(lambda t: t.strip()).map(Text),
        st.builds(
            Comment,
            st.text(alphabet=string.ascii_letters + " ", max_size=20).filter(
                lambda t: "--" not in t
            ),
        ),
        st.builds(
            lambda tag, attrs: Element(tag, attrs),
            void_tags,
            st.dictionaries(attr_names, attr_values, max_size=3),
        ),
    )


def _element_trees(children_strategy):
    return st.builds(
        _build_element,
        flow_tags,
        st.dictionaries(attr_names, attr_values, max_size=3),
        st.lists(children_strategy, max_size=4),
    )


def _build_element(tag, attrs, children):
    # Avoid structure tags that trigger sibling-implied closing rules in a
    # way that depends on nesting context.
    element = Element(tag if tag not in ("li",) else "div", attrs)
    for child in children:
        element.append_child(child)
    return element


dom_trees = st.recursive(_leaf_nodes(), _element_trees, max_leaves=25)


def canonical(node):
    """Serialize a node to its parser-canonical form."""
    markup = serialize_node(node)
    reparsed = parse_fragment(markup)
    return "".join(serialize_node(n) for n in reparsed)


# -- HTML round-trip properties ------------------------------------------------


@settings(max_examples=150)
@given(dom_trees)
def test_serialize_parse_is_fixed_point(tree):
    """parse(serialize(tree)) serializes identically the second time."""
    once = canonical(tree)
    reparsed = parse_fragment(once)
    twice = "".join(serialize_node(n) for n in reparsed)
    assert once == twice


@settings(max_examples=150)
@given(dom_trees)
def test_text_content_preserved_through_round_trip(tree):
    markup = serialize_node(tree)
    reparsed = parse_fragment(markup)
    original_text = tree.text_content if hasattr(tree, "text_content") else tree.data
    if isinstance(tree, Comment):
        return
    reparsed_text = "".join(
        n.text_content if hasattr(n, "text_content") else getattr(n, "data", "")
        for n in reparsed
        if not isinstance(n, Comment)
    )
    assert reparsed_text == original_text


@settings(max_examples=150)
@given(st.text(max_size=200))
def test_escape_text_round_trips(text):
    assert decode_entities(escape_text(text)) == text


@settings(max_examples=150)
@given(st.text(max_size=200))
def test_escape_attribute_round_trips(text):
    assert decode_entities(escape_attribute(text)) == text


@settings(max_examples=100)
@given(
    st.dictionaries(attr_names, attr_values, max_size=5),
)
def test_attributes_survive_round_trip(attrs):
    element = Element("div", attrs)
    (reparsed,) = parse_fragment(serialize_node(element))
    assert dict(reparsed.attributes) == dict(element.attributes)


@settings(max_examples=100)
@given(dom_trees)
def test_clone_serializes_identically(tree):
    assert serialize_node(tree.clone()) == serialize_node(tree)


@settings(max_examples=100)
@given(dom_trees)
def test_clone_is_deep(tree):
    clone = tree.clone()
    stack = [clone]
    originals = {id(tree)}
    node = tree
    queue = [tree]
    while queue:
        node = queue.pop()
        originals.add(id(node))
        queue.extend(getattr(node, "child_nodes", []))
    queue = [clone]
    while queue:
        node = queue.pop()
        assert id(node) not in originals
        queue.extend(getattr(node, "child_nodes", []))


@settings(max_examples=100)
@given(st.text(alphabet=string.printable, max_size=300))
def test_parse_document_never_crashes_and_normalizes(markup):
    document = parse_document(markup)
    assert document.document_element is not None
    assert document.head is not None
    assert document.body is not None or document.frameset is not None
    # Serialization of arbitrary soup is parseable again.
    again = parse_document(serialize_document(document))
    assert again.document_element is not None


@settings(max_examples=100)
@given(st.text(alphabet=string.printable, max_size=300))
def test_document_parse_serialize_stabilizes(markup):
    """Soup converges to a fixed point in at most two rounds."""
    once = serialize_document(parse_document(markup))
    twice = serialize_document(parse_document(once))
    thrice = serialize_document(parse_document(twice))
    assert twice == thrice


# -- URL properties --------------------------------------------------------------

hosts = st.sampled_from(["a.com", "www.example.com", "cdn.site.org"])
path_segments = st.lists(
    st.text(alphabet=string.ascii_lowercase + string.digits, min_size=1, max_size=6),
    min_size=0,
    max_size=4,
)


@st.composite
def absolute_urls(draw):
    host = draw(hosts)
    segments = draw(path_segments)
    path = "/" + "/".join(segments)
    query = draw(st.one_of(st.none(), st.just("a=1"), st.just("q=x&y=2")))
    text = "http://" + host + path
    if query:
        text += "?" + query
    return text


@settings(max_examples=150)
@given(absolute_urls())
def test_url_str_parse_round_trip(text):
    assert str(parse_url(text)) == text


@settings(max_examples=150)
@given(absolute_urls(), path_segments)
def test_resolution_always_absolute(base_text, segments):
    base = parse_url(base_text)
    reference = parse_url("/".join(segments))
    resolved = resolve_url(base, reference)
    assert resolved.is_absolute
    assert resolved.host == base.host


@settings(max_examples=150)
@given(absolute_urls())
def test_resolving_self_relative_empty_is_identity_without_fragment(text):
    base = parse_url(text)
    resolved = resolve_url(base, parse_url(""))
    assert resolved.origin == base.origin
    assert resolved.path == (base.path or "/")


@settings(max_examples=150)
@given(absolute_urls(), absolute_urls())
def test_absolute_reference_ignores_base(base_text, ref_text):
    resolved = resolve_url(parse_url(base_text), parse_url(ref_text))
    assert str(resolved).startswith("http://" + parse_url(ref_text).host)


@settings(max_examples=150)
@given(absolute_urls())
def test_resolution_idempotent(text):
    base = parse_url("http://base.org/dir/page.html")
    once = resolve_url(base, parse_url(text))
    twice = resolve_url(base, once)
    assert str(once) == str(twice)


@settings(max_examples=150)
@given(absolute_urls())
def test_no_dot_segments_after_resolution(text):
    base = parse_url("http://base.org/a/b/c.html")
    resolved = resolve_url(base, parse_url(text))
    segments = resolved.path.split("/")
    assert "." not in segments
    assert ".." not in segments
