"""Tests for js_escape/js_unescape and the Fig. 4 XML envelope."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    EnvelopeError,
    HeadChild,
    NewContent,
    TopElement,
    build_envelope,
    js_escape,
    js_unescape,
    parse_envelope,
)


class TestJsEscape:
    def test_safe_characters_untouched(self):
        safe = "abcXYZ019@*_+-./"
        assert js_escape(safe) == safe

    def test_latin1_percent_encoding(self):
        assert js_escape(" ") == "%20"
        assert js_escape("<&>") == "%3C%26%3E"
        assert js_escape("é") == "%E9"

    def test_unicode_percent_u_encoding(self):
        assert js_escape("中") == "%u4E2D"
        assert js_escape("€") == "%u20AC"

    def test_unescape_inverts(self):
        for text in ("hello world", "<p class=\"x\">&amp;</p>", "中文 mixed π"):
            assert js_unescape(js_escape(text)) == text

    def test_unescape_tolerates_bare_percent(self):
        assert js_unescape("100% sure") == "100% sure"

    def test_escape_output_is_cdata_safe(self):
        nasty = "]]> <script> & ' \""
        escaped = js_escape(nasty)
        assert "]]>" not in escaped
        assert "<" not in escaped
        assert "&" not in escaped

    @settings(max_examples=200)
    @given(st.text(max_size=200))
    def test_round_trip_property(self, text):
        assert js_unescape(js_escape(text)) == text


def sample_content():
    return NewContent(
        1234567,
        head_children=[
            HeadChild("title", [], "My Page"),
            HeadChild("style", [("type", "text/css")], "body { color: red; }"),
            HeadChild("meta", [("charset", "utf-8")], ""),
        ],
        top_elements=[
            TopElement("body", [("class", "main"), ("onload", "")], "<p>hello</p>")
        ],
        user_actions_json='[{"kind": "mousemove", "x": 1, "y": 2}]',
    )


class TestEnvelope:
    def test_build_has_paper_structure(self):
        xml = build_envelope(sample_content())
        assert xml.startswith("<?xml version='1.0' encoding='utf-8'?>")
        for tag in ("<newContent>", "<docTime>", "<docContent>", "<docHead>",
                    "<hChild1>", "<hChild2>", "<hChild3>", "<docBody>", "<userActions>"):
            assert tag in xml
        assert "<docFrameSet>" not in xml

    def test_round_trip_equality(self):
        content = sample_content()
        assert parse_envelope(build_envelope(content)) == content

    def test_frameset_round_trip(self):
        content = NewContent(
            9,
            head_children=[HeadChild("title", [], "Frames")],
            top_elements=[
                TopElement("frameset", [("rows", "50%,50%")], '<frame src="http://a.com/f.html">'),
                TopElement("noframes", [], "<p>no frames here</p>"),
            ],
        )
        xml = build_envelope(content)
        assert "<docFrameSet>" in xml
        assert "<docNoFrames>" in xml
        assert "<docBody>" not in xml
        parsed = parse_envelope(xml)
        assert parsed.uses_frames
        assert parsed == content

    def test_empty_content_round_trip(self):
        content = NewContent(5)
        parsed = parse_envelope(build_envelope(content))
        assert parsed.doc_time == 5
        assert parsed.head_children == []
        assert parsed.top_elements == []

    def test_tricky_payloads_survive(self):
        content = NewContent(
            7,
            head_children=[HeadChild("script", [("id", "x")], "if (a<b && c>d) { s='%u]]>'; }")],
            top_elements=[
                TopElement("body", [("data-x", 'quo"te & <tag>')], "<div>]]></div>中文")
            ],
        )
        assert parse_envelope(build_envelope(content)) == content

    def test_user_actions_payload_round_trip(self):
        content = sample_content()
        parsed = parse_envelope(build_envelope(content))
        assert parsed.user_actions_json == content.user_actions_json

    def test_parse_rejects_non_envelope(self):
        with pytest.raises(EnvelopeError):
            parse_envelope("<html><body>nope</body></html>")

    def test_parse_rejects_missing_doc_time(self):
        with pytest.raises(EnvelopeError):
            parse_envelope("<newContent><docContent></docContent></newContent>")

    def test_parse_rejects_bad_payload(self):
        xml = (
            "<newContent><docTime>1</docTime><docContent><docHead>"
            "<hChild1><![CDATA[notjson]]></hChild1>"
            "</docHead></docContent></newContent>"
        )
        with pytest.raises(EnvelopeError):
            parse_envelope(xml)

    def test_unsupported_top_element_rejected(self):
        with pytest.raises(EnvelopeError):
            TopElement("div", [], "")


attr_pairs = st.lists(
    st.tuples(
        st.sampled_from(["id", "class", "style", "onload", "data-x"]),
        st.text(max_size=20),
    ),
    max_size=4,
)


@settings(max_examples=100)
@given(
    st.integers(min_value=0, max_value=2**53),
    st.lists(
        st.tuples(st.sampled_from(["title", "style", "script", "meta", "link"]), attr_pairs, st.text(max_size=50)),
        max_size=5,
    ),
    attr_pairs,
    st.text(max_size=80),
)
def test_envelope_round_trip_property(doc_time, head_specs, body_attrs, body_inner):
    content = NewContent(
        doc_time,
        head_children=[HeadChild(tag, attrs, inner) for tag, attrs, inner in head_specs],
        top_elements=[TopElement("body", body_attrs, body_inner)],
    )
    assert parse_envelope(build_envelope(content)) == content
