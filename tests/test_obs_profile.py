"""Tests for continuous profiling: self-time, call trees, exports."""

import json

from repro.obs import (
    Profile,
    Profiler,
    Tracer,
    build_profile,
    collapsed_stacks,
    render_profile_summary,
    speedscope_profile,
    write_collapsed,
    write_speedscope,
)


def make_tracer():
    return Tracer()


class TestSelfTime:
    def test_self_time_subtracts_direct_children(self):
        tracer = make_tracer()
        parent = tracer.start_span("host.serve", t=0.0, node="host")
        tracer.start_span("transport.hold", t=1.0, parent=parent, node="host").finish(4.0)
        parent.finish(5.0)
        profile = Profile(tracer.spans)
        kinds = profile.by_kind()
        assert kinds["host.serve"]["inclusive"] == 5.0
        assert kinds["host.serve"]["self"] == 2.0
        assert kinds["transport.hold"]["self"] == 3.0

    def test_child_outliving_parent_credits_only_the_overlap(self):
        tracer = make_tracer()
        parent = tracer.start_span("host.serve", t=0.0, node="host")
        child = tracer.start_span("transport.hold", t=3.0, parent=parent, node="host")
        parent.finish(5.0)
        child.finish(9.0)  # outlives the parent by 4s
        profile = Profile(tracer.spans)
        assert profile.by_kind()["host.serve"]["self"] == 3.0

    def test_self_time_clamped_at_zero(self):
        tracer = make_tracer()
        parent = tracer.start_span("host.serve", t=2.0, node="host")
        # Two children whose overlap together exceeds the parent's extent
        # (sibling overlap is not deduplicated).
        tracer.start_span("transport.hold", t=2.0, parent=parent).finish(5.0)
        tracer.start_span("transport.hold", t=2.0, parent=parent).finish(5.0)
        parent.finish(5.0)
        profile = Profile(tracer.spans)
        assert profile.by_kind()["host.serve"]["self"] == 0.0

    def test_open_spans_are_excluded(self):
        tracer = make_tracer()
        tracer.start_span("host.serve", t=0.0, node="host")  # never finished
        tracer.start_span("host.generate", t=0.0, node="host").finish(0.0)
        profile = Profile(tracer.spans)
        assert set(profile.by_kind()) == {"host.generate"}

    def test_wall_axis_comes_from_tags(self):
        tracer = make_tracer()
        tracer.start_span(
            "host.generate", t=1.0, node="host", wall_seconds=0.25
        ).finish(1.0)
        profile = Profile(tracer.spans)
        row = profile.by_kind()["host.generate"]
        assert row["self"] == 0.0  # instantaneous in sim-time
        assert row["wall"] == 0.25
        assert profile.total_wall() == 0.25

    def test_since_filters_by_start(self):
        tracer = make_tracer()
        tracer.start_span("old", t=1.0, node="n").finish(2.0)
        tracer.start_span("new", t=10.0, node="n").finish(11.0)
        profile = build_profile(tracer, since=5.0)
        assert set(profile.by_kind()) == {"new"}


class TestCallTree:
    def build(self):
        tracer = make_tracer()
        generate = tracer.start_span("host.generate", t=0.0, node="host")
        generate.finish(0.0)
        serve = tracer.start_span("host.serve", t=0.0, parent=generate, node="host")
        serve.finish(2.0)
        apply_span = tracer.start_span(
            "snippet.apply", t=1.5, parent=serve, node="m1", wall_seconds=0.001
        )
        apply_span.finish(2.5)
        return tracer

    def test_stacks_are_rooted_paths(self):
        profile = Profile(self.build().spans)
        paths = [row[0] for row in profile.stacks()]
        assert ("host.generate",) in paths
        assert ("host.generate", "host.serve") in paths
        assert ("host.generate", "host.serve", "snippet.apply") in paths

    def test_collapsed_lines_are_integer_microseconds(self):
        profile = Profile(self.build().spans)
        lines = profile.collapsed()
        assert "host.generate;host.serve 1500000" in lines
        assert "host.generate;host.serve;snippet.apply 1000000" in lines
        for line in lines:
            frames, value = line.rsplit(" ", 1)
            assert frames and int(value) > 0

    def test_by_node_rollup(self):
        profile = Profile(self.build().spans)
        nodes = profile.by_node()
        assert nodes["host"]["count"] == 2
        assert nodes["m1"]["wall"] == 0.001

    def test_self_samples_feed(self):
        profile = Profile(self.build().spans)
        samples = profile.self_samples(".serve")
        assert samples == {"host": [1.5]}
        wall = profile.self_samples(".apply", wall=True)
        assert wall == {"m1": [0.001]}

    def test_parent_outside_window_roots_here(self):
        tracer = make_tracer()
        old = tracer.start_span("host.serve", t=0.0, node="host").finish(1.0)
        tracer.start_span("snippet.apply", t=10.0, parent=old, node="m1").finish(11.0)
        profile = build_profile(tracer, since=5.0)
        assert [row[0] for row in profile.stacks()] == [("snippet.apply",)]

    def test_to_dict_is_json_ready(self):
        profile = Profile(self.build().spans)
        document = json.loads(json.dumps(profile.to_dict()))
        assert document["spans"] == 3
        assert document["kinds"]["host.serve"]["self"] == 1.5
        assert document["collapsed"]


class TestSpansSinceRetroactive:
    def test_retroactive_serve_span_still_found(self):
        """Serve spans open at poll-*arrival* time, so a span recorded
        late can start before spans recorded earlier; the window walk
        must not stop early and lose it."""
        tracer = make_tracer()
        tracer.start_span("host.generate", t=50.0, node="host").finish(50.0)
        # Recorded later, but started long before (a held long poll).
        tracer.start_span("host.serve", t=10.0, node="host").finish(55.0)
        tracer.start_span("host.generate", t=60.0, node="host").finish(60.0)
        recent = tracer.spans_since(40.0)
        names = [span.name for span in recent]
        assert names.count("host.generate") == 2
        window = build_profile(tracer, since=40.0)
        # The serve span started before the window; it is excluded.
        assert set(window.by_kind()) == {"host.generate"}

    def test_open_spans_do_not_stop_the_walk(self):
        tracer = make_tracer()
        tracer.start_span("a", t=1.0, node="n").finish(2.0)
        tracer.start_span("open", t=1.0, node="n")  # never finishes
        tracer.start_span("b", t=10.0, node="n").finish(11.0)
        assert [span.name for span in tracer.spans_since(5.0)] == ["b"]


class TestProfilerFrontEnd:
    def test_window_is_a_trailing_profile(self):
        tracer = make_tracer()
        tracer.start_span("old", t=0.0, node="n").finish(1.0)
        tracer.start_span("new", t=95.0, node="n").finish(96.0)
        profiler = Profiler(tracer)
        window = profiler.window(100.0, 30.0)
        assert window.since == 70.0
        assert set(window.by_kind()) == {"new"}

    def test_render_summary_orders_by_self_time(self):
        tracer = make_tracer()
        tracer.start_span("cheap", t=0.0, node="n").finish(0.5)
        tracer.start_span("hot", t=1.0, node="n").finish(9.0)
        text = render_profile_summary(Profiler(tracer).profile(), title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        hot = next(i for i, line in enumerate(lines) if line.startswith("hot"))
        cheap = next(i for i, line in enumerate(lines) if line.startswith("cheap"))
        assert hot < cheap

    def test_render_summary_empty(self):
        assert "(no finished spans)" in render_profile_summary(Profile([]))


class TestFlameGraphExports:
    def build(self):
        tracer = make_tracer()
        root = tracer.start_span("host.serve", t=0.0, node="host", wall_seconds=0.002)
        tracer.start_span("transport.hold", t=0.5, parent=root, node="host").finish(1.5)
        root.finish(2.0)
        return tracer

    def test_collapsed_round_trip(self, tmp_path):
        path = tmp_path / "stacks.collapsed"
        count = write_collapsed(self.build(), str(path))
        lines = path.read_text().splitlines()
        assert len(lines) == count > 0
        assert collapsed_stacks(self.build()) == "\n".join(lines)

    def test_speedscope_document_shape(self):
        document = speedscope_profile(self.build(), name="unit")
        assert document["$schema"].endswith("file-format-schema.json")
        assert document["name"] == "unit"
        names = [frame["name"] for frame in document["shared"]["frames"]]
        assert "host.serve" in names and "transport.hold" in names
        sim, wall = document["profiles"]
        assert sim["name"] == "sim self-time" and wall["name"] == "wall compute"
        for axis in (sim, wall):
            assert axis["unit"] == "microseconds"
            assert len(axis["samples"]) == len(axis["weights"])
            assert axis["endValue"] == sum(axis["weights"])
            for sample in axis["samples"]:
                assert all(0 <= idx < len(names) for idx in sample)
        # Sim axis: 1s self for serve + 1s for hold; wall axis: serve only.
        assert sum(sim["weights"]) == 2000000
        assert sum(wall["weights"]) == 2000

    def test_speedscope_round_trip(self, tmp_path):
        path = tmp_path / "profile.speedscope.json"
        count = write_speedscope(self.build(), str(path), name="rt")
        document = json.loads(path.read_text())
        assert count == sum(len(p["samples"]) for p in document["profiles"])
        assert document["exporter"] == "repro.obs.export"
