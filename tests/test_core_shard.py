"""Sharded serving: the session directory, the agent pool, failover.

Covers the placement contract (sticky, bounded-load, minimal movement
on membership change), directory-routed joins across real shard hosts,
host-death failover promoting the designated standby with every member
recovered and ``doc_time`` ordering preserved, the ``shards=1``
wire-byte-identity guarantee, and the shard observability surface
(events, health rules, fleet rollups, the CLI table renderer).
"""

import json
from math import ceil

import pytest

from repro.browser import Browser
from repro.core import (
    AgentPool,
    CoBrowsingSession,
    ROOT_SHARD,
    SessionDirectory,
    SessionError,
    render_shard_table,
)
from repro.html import Text
from repro.http import HttpRequest
from repro.net import LAN_PROFILE, Host, Network
from repro.obs import (
    SHARD_MIGRATE,
    SHARD_PROMOTE,
    EventBus,
    FleetView,
    HealthMonitor,
    shard_rules,
)
from repro.sim import Simulator
from repro.webserver import OriginServer, StaticSite

PAGE = (
    "<html><head><title>Shards</title></head><body>"
    "<p id='p0'>seed paragraph</p></body></html>"
)


def build_world(shards=None, poll_interval=0.5, events=None, telemetry=None):
    sim = Simulator()
    network = Network(sim)
    site = StaticSite("site.com")
    site.add_page("/", PAGE)
    OriginServer(network, "site.com", site.handle)
    host = Browser(Host(network, "host-pc", LAN_PROFILE, segment="lan"), name="host")
    session = CoBrowsingSession(
        host, poll_interval=poll_interval, events=events, telemetry=telemetry
    )
    pool = AgentPool(session, shards=shards) if shards is not None else None
    return sim, network, host, session, pool


def make_guests(network, count, prefix="g"):
    return [
        Browser(
            Host(network, "%s-pc-%d" % (prefix, i), LAN_PROFILE, segment="lan"),
            name="%s%02d" % (prefix, i),
        )
        for i in range(count)
    ]


def edit(host, text):
    def mutate(document):
        target = document.get_element_by_id("p0")
        target.remove_all_children()
        target.append_child(Text(text))

    host.mutate_document(mutate)


class TestSessionDirectory:
    def test_placement_is_sticky_and_deterministic(self):
        a = SessionDirectory(seed=7)
        b = SessionDirectory(seed=7)
        for directory in (a, b):
            directory.add_instance("x")
            directory.add_instance("y")
            directory.add_instance("z")
        keys = ["m%d" % i for i in range(50)]
        first = {key: a.place(key) for key in keys}
        assert {key: a.place(key) for key in keys} == first  # sticky
        assert {key: b.place(key) for key in keys} == first  # seeded layout

    def test_different_seeds_produce_different_layouts(self):
        layouts = []
        for seed in (0, 1):
            directory = SessionDirectory(seed=seed)
            directory.add_instance("x")
            directory.add_instance("y")
            layouts.append(
                {key: directory.place(key) for key in ("m%d" % i for i in range(40))}
            )
        assert layouts[0] != layouts[1]

    def test_bounded_load_cap_holds(self):
        directory = SessionDirectory(replicas=8, load_factor=1.25, seed=3)
        for instance in ("a", "b", "c", "d"):
            directory.add_instance(instance)
        for i in range(200):
            directory.place("k%d" % i)
        cap = directory.capacity()
        assert all(count <= cap for count in directory.load().values())

    def test_add_instance_moves_minimal_range(self):
        directory = SessionDirectory(seed=1)
        directory.add_instance("a")
        directory.add_instance("b")
        keys = ["k%d" % i for i in range(90)]
        for key in keys:
            directory.place(key)
        before = dict(directory.assignments)
        migrations = directory.add_instance("c")
        assert len(migrations) <= ceil(len(keys) / 3)
        for key, (old, new) in migrations.items():
            assert old == before[key]
            assert new == "c"
        untouched = set(keys) - set(migrations)
        assert all(directory.assignments[key] == before[key] for key in untouched)

    def test_remove_instance_promotes_in_bulk(self):
        directory = SessionDirectory(seed=2)
        for instance in ("a", "b", "c"):
            directory.add_instance(instance)
        for i in range(60):
            directory.place("k%d" % i)
        dead_keys = {
            key for key, owner in directory.assignments.items() if owner == "a"
        }
        migrations = directory.remove_instance("a", promote_to="b")
        assert set(migrations) == dead_keys
        assert all(new == "b" for _old, new in migrations.values())
        assert "a" not in directory.load()
        assert all(owner != "a" for owner in directory.assignments.values())

    def test_remove_instance_drains_only_dead_keys(self):
        directory = SessionDirectory(seed=2)
        for instance in ("a", "b", "c"):
            directory.add_instance(instance)
        keys = ["k%d" % i for i in range(60)]
        for key in keys:
            directory.place(key)
        before = dict(directory.assignments)
        migrations = directory.remove_instance("c")
        assert set(migrations) == {key for key in keys if before[key] == "c"}
        survivors = set(keys) - set(migrations)
        assert all(directory.assignments[key] == before[key] for key in survivors)
        assert all(owner in ("a", "b") for owner in directory.assignments.values())

    def test_successor_and_errors(self):
        directory = SessionDirectory(seed=0)
        directory.add_instance("a")
        assert directory.successor("a") is None
        directory.add_instance("b")
        assert directory.successor("a") == "b"
        assert directory.successor("b") == "a"
        with pytest.raises(ValueError):
            directory.add_instance("a")
        with pytest.raises(KeyError):
            directory.remove_instance("nope")
        with pytest.raises(KeyError):
            directory.remove_instance("a", promote_to="nope")

    def test_release_frees_capacity(self):
        directory = SessionDirectory(seed=0)
        directory.add_instance("a")
        owner = directory.place("k")
        assert directory.load()[owner] == 1
        directory.release("k")
        assert directory.load()[owner] == 0
        assert "k" not in directory.assignments

    def test_place_with_no_instances_raises(self):
        directory = SessionDirectory()
        with pytest.raises(KeyError):
            directory.place("k")


class TestAgentPool:
    def test_directory_routed_joins_spread_members(self):
        events = EventBus()
        sim, network, host, session, pool = build_world(shards=4, events=events)
        guests = make_guests(network, 12)

        def scenario():
            yield from pool.start()
            for guest in guests:
                yield from pool.join_browser(guest)
            yield from session.host_navigate("http://site.com/")
            yield from session.wait_until_synced(timeout=60)

        sim.run_until_complete(sim.process(scenario()))
        load = pool.directory.load()
        assert set(load) == {"shard-0", "shard-1", "shard-2", "shard-3"}
        assert sum(load.values()) == 12
        assert all(count >= 1 for count in load.values())
        # Every member polls the shard the directory placed it on.
        for member_id in pool.snippets:
            assert pool.agent_for(member_id) is pool.relays[pool.shard_of(member_id)]
        assert len(session.member_times()) == 12
        session.close()

    def test_add_shard_rebalances_minimally_and_stays_synced(self):
        sim, network, host, session, pool = build_world(shards=2)
        guests = make_guests(network, 10)

        def scenario():
            yield from pool.start()
            for guest in guests:
                yield from pool.join_browser(guest)
            yield from session.host_navigate("http://site.com/")
            yield from session.wait_until_synced(timeout=60)
            before = dict(pool.directory.assignments)
            yield from pool.add_shard()
            moved = [
                member
                for member, shard in pool.directory.assignments.items()
                if before[member] != shard
            ]
            assert moved, "a third shard should take over some members"
            assert len(moved) <= ceil(10 / 3)
            yield sim.timeout(3.0)
            edit(host, "post-rebalance edit")
            yield from session.wait_until_synced(timeout=60)
            for member in moved:
                assert pool.snippets[member].connected

        sim.run_until_complete(sim.process(scenario()))
        session.close()

    def test_failover_promotes_standby_and_recovers_all_members(self):
        events = EventBus()
        sim, network, host, session, pool = build_world(shards=4, events=events)
        guests = make_guests(network, 12)
        monitor = HealthMonitor(session)

        def scenario():
            yield from pool.start()
            for guest in guests:
                yield from pool.join_browser(guest)
            yield from session.host_navigate("http://site.com/")
            yield from session.wait_until_synced(timeout=60)
            edit(host, "before failure")
            yield sim.timeout(2.0)
            yield from session.wait_until_synced(timeout=60)

            victim = max(pool.directory.load(), key=lambda s: pool.directory.load()[s])
            standby = pool.directory.successor(victim)
            dead_members = [
                member
                for member, shard in pool.directory.assignments.items()
                if shard == victim
            ]
            assert dead_members
            pre_times = dict(session.member_times())
            pool.fail_shard(victim)

            # Bulk promotion: every orphan landed on the standby.
            for member in dead_members:
                assert pool.shard_of(member) == standby
            promotes = events.events(type=SHARD_PROMOTE)
            assert len(promotes) == 1
            assert promotes[0].node == standby
            assert promotes[0].data["dead"] == victim
            assert promotes[0].data["members"] == len(dead_members)
            migrates = events.events(type=SHARD_MIGRATE)
            assert {e.node for e in migrates} == set(dead_members)
            assert all(e.data["reason"] == "failover" for e in migrates)

            yield sim.timeout(3.0)
            edit(host, "after failure")
            yield from session.wait_until_synced(timeout=120)
            post_times = session.member_times()
            # 100% of the dead shard's members re-attached to the
            # promoted instance with no lost doc_time ordering.
            for member in dead_members:
                assert pool.snippets[member].connected
                assert post_times[member] >= pre_times[member]
                assert post_times[member] == session.agent.doc_time

        sim.run_until_complete(sim.process(scenario()))
        assert pool.promotions == 1
        assert session.metrics.counter("shard_promotions").value == 1
        # The shard rule family grades the surviving instances.
        monitor.sample()
        report = monitor.check()
        skew = [v for v in report.verdicts if v.rule == "shard_load_skew"]
        assert len(skew) == 3
        assert all(v.subject.startswith("shard:") for v in skew)
        session.close()

    def test_fail_shard_guards(self):
        sim, network, host, session, pool = build_world(shards=2)

        def scenario():
            yield from pool.start()

        sim.run_until_complete(sim.process(scenario()))
        with pytest.raises(SessionError):
            pool.fail_shard("nope")
        pool.fail_shard("shard-0")
        with pytest.raises(SessionError):
            pool.fail_shard("shard-1")  # last shard has no standby
        session.close()

    def test_single_shard_pool_serves_from_root(self):
        sim, network, host, session, pool = build_world(shards=1)
        guests = make_guests(network, 3)

        def scenario():
            yield from pool.start()  # no-op
            for guest in guests:
                yield from pool.join_browser(guest)
            yield from session.host_navigate("http://site.com/")
            yield from session.wait_until_synced(timeout=60)

        sim.run_until_complete(sim.process(scenario()))
        assert pool.relays == {}
        assert pool.directory.load() == {ROOT_SHARD: 3}
        for member_id in pool.snippets:
            assert pool.agent_for(member_id) is session.agent
        with pytest.raises(SessionError):
            sim.run_until_complete(sim.process(pool.add_shard()))
        session.close()

    def test_single_shard_wire_bytes_identical_to_plain_session(self):
        """``shards=1`` must be byte-identical on the wire to today's
        path: identical worlds, one joined via the pool and one via a
        plain ``session.join``, serve identical poll-response bytes."""

        def run(sharded):
            sim, network, host, session, pool = build_world(
                shards=1 if sharded else None
            )
            guest = make_guests(network, 1, prefix="w")[0]

            def scenario():
                if sharded:
                    yield from pool.join_browser(guest, participant_id="wire")
                else:
                    yield from session.join(guest, participant_id="wire")
                yield from session.host_navigate("http://site.com/")
                yield from session.wait_until_synced(timeout=60)
                edit(host, "wire identity edit")
                yield sim.timeout(2.0)
                yield from session.wait_until_synced(timeout=60)

            sim.run_until_complete(sim.process(scenario()))
            # Replay a fixed poll sequence against the serving agent and
            # capture the exact response bytes.
            bodies = []

            def probe():
                agent = (
                    pool.agent_for("probe") if sharded else session.agent
                )
                assert agent is session.agent
                for timestamp in (0, session.agent.doc_time):
                    payload = json.dumps(
                        {"participant": "probe", "timestamp": timestamp, "actions": []}
                    ).encode()
                    request = HttpRequest("POST", "/poll", None, payload)
                    response = yield from agent._poll_response(request, "probe")
                    bodies.append(response.body)

            sim.run_until_complete(sim.process(probe()))
            session.close()
            return bodies

        assert run(sharded=True) == run(sharded=False)

    def test_leave_releases_placement(self):
        sim, network, host, session, pool = build_world(shards=2)
        guests = make_guests(network, 4)

        def scenario():
            yield from pool.start()
            for guest in guests:
                yield from pool.join_browser(guest)
            yield from session.host_navigate("http://site.com/")
            yield from session.wait_until_synced(timeout=60)

        sim.run_until_complete(sim.process(scenario()))
        member = sorted(pool.snippets)[0]
        pool.leave(member)
        assert member not in pool.snippets
        assert member not in session.participants
        assert member not in pool.directory.assignments
        assert sum(pool.directory.load().values()) == 3
        session.close()

    def test_render_shard_table(self):
        sim, network, host, session, pool = build_world(shards=2)
        guests = make_guests(network, 4)

        def scenario():
            yield from pool.start()
            for guest in guests:
                yield from pool.join_browser(guest)
            yield from session.host_navigate("http://site.com/")
            yield from session.wait_until_synced(timeout=60)

        sim.run_until_complete(sim.process(scenario()))
        table = render_shard_table(pool)
        assert "shard-0" in table and "shard-1" in table
        assert "2 shards, 4 members" in table
        assert "up" in table
        session.close()

    def test_pool_rejects_bad_arguments(self):
        sim, network, host, session, _pool = build_world()
        with pytest.raises(SessionError):
            AgentPool(session, shards=0)
        session.close()


class TestShardObservability:
    def test_fleet_per_shard_rollups(self):
        view = FleetView(shard_of=lambda member: {"m1": "shard-0", "m2": "shard-1"}.get(member))
        blob = {
            "v": 1,
            "members": [
                {"id": "m1", "w": 1, "c": {"polls": 3}},
                {"id": "m2", "w": 1, "c": {"polls": 5}},
                {"id": "m3", "w": 1, "c": {"polls": 7}},
            ],
        }
        view.ingest(blob, t=1.0)
        shards = view.per_shard()
        assert shards["shard-0"].counters["polls"] == 3
        assert shards["shard-1"].counters["polls"] == 5
        assert shards[None].counters["polls"] == 7
        exported = view.to_dict()
        assert exported["shards"]["shard-0"]["counters"]["polls"] == 3
        assert exported["shards"]["?"]["counters"]["polls"] == 7

    def test_fleet_export_omits_shards_without_resolver(self):
        view = FleetView()
        assert view.to_dict()["shards"] == {}

    def test_shard_rules_empty_without_pool(self):
        sim, network, host, session, _pool = build_world()
        monitor = HealthMonitor(session, rules=shard_rules())
        report = monitor.check()
        assert report.verdicts == []
        assert monitor.pool is None
        session.close()

    def test_pool_wires_fleet_shard_resolver(self):
        sim, network, host, session, pool = build_world(
            shards=1, telemetry=FleetView()
        )
        assert session.fleet.shard_of == pool.shard_of
        session.close()
