"""Cascaded relay fan-out: topology, propagation, failure, and auth.

Covers the RelayAgent tentpole end to end: breadth-first tree building,
doc_time propagation through tiers, delta envelopes recomputed per tier,
action forwarding up (and cosmetic mirroring across subtrees), orphan
re-attachment after mid-session relay death — grandparent first, root as
last resort, timestamps monotone throughout — and HMAC rejection of a
forged relay.  BackoffPolicy (the configurable retry pacing shared by
poll retry and re-attachment) is unit-tested here too.
"""

import pytest

from repro.browser import Browser
from repro.core import (
    BackoffPolicy,
    CoBrowsingSession,
    MouseMoveAction,
    REF_ATTRIBUTE,
    RelayAgent,
    FormFillAction,
)
from repro.html import Text
from repro.net import LAN_PROFILE, Host, Network
from repro.sim import Simulator
from repro.webserver import OriginServer, StaticSite

PAGE = (
    "<html><head><title>Relay test</title></head>"
    "<body><h1 id='headline'>News</h1>"
    "<img src='/logo.png'>"
    "<form id='search'><input name='q' value=''></form>"
    + "".join("<p id='p%d'>paragraph %d body</p>" % (i, i) for i in range(12))
    + "</body></html>"
)


def build_world(participants=2, secret=None, **session_kwargs):
    sim = Simulator()
    network = Network(sim)
    site = StaticSite("site.com")
    site.add_page("/", PAGE)
    site.add("/logo.png", "image/png", b"\x89PNG" + b"l" * 2000)
    OriginServer(network, "site.com", site.handle)
    host_pc = Host(network, "host-pc", LAN_PROFILE, segment="campus")
    host_browser = Browser(host_pc, name="bob")
    session_kwargs.setdefault("poll_interval", 0.2)
    session = CoBrowsingSession(host_browser, secret=secret, **session_kwargs)
    browsers = []
    for index in range(participants):
        pc = Host(network, "part-pc-%d" % index, LAN_PROFILE, segment="campus")
        browsers.append(Browser(pc, name="p%d" % index))
    return sim, session, browsers


def run(sim, generator, limit=1e9):
    return sim.run_until_complete(sim.process(generator), limit=limit)


def join_all(session, browsers):
    relays = []
    for browser in browsers:
        relay = yield from session.join(browser)
        relays.append(relay)
    return relays


def edit_paragraph(browser, index, text):
    def mutate(document):
        target = document.get_element_by_id("p%d" % index)
        target.remove_all_children()
        target.append_child(Text(text))

    browser.mutate_document(mutate)


class TestBackoffPolicy:
    def test_constant_policy_is_flat(self):
        policy = BackoffPolicy(base=0.2, cap=0.2)
        assert [policy.delay(n) for n in (1, 2, 5)] == [0.2, 0.2, 0.2]

    def test_exponential_growth_hits_cap(self):
        policy = BackoffPolicy(base=0.5, cap=4.0, multiplier=2.0)
        assert policy.delay(1) == 0.5
        assert policy.delay(2) == 1.0
        assert policy.delay(3) == 2.0
        assert policy.delay(4) == 4.0
        assert policy.delay(10) == 4.0  # capped

    def test_jitter_stays_within_fraction(self):
        policy = BackoffPolicy(base=1.0, cap=1.0, jitter=0.25, seed=7)
        samples = [policy.delay(1) for _ in range(200)]
        assert all(0.75 <= s <= 1.25 for s in samples)
        assert len(set(samples)) > 1  # actually jittering

    def test_derive_is_deterministic_per_id(self):
        base = BackoffPolicy(base=1.0, cap=8.0, jitter=0.5, multiplier=2.0)
        first = [base.derive("alice").delay(n) for n in range(1, 6)]
        again = [base.derive("alice").delay(n) for n in range(1, 6)]
        other = [base.derive("carol").delay(n) for n in range(1, 6)]
        assert first == again
        assert first != other

    def test_validation(self):
        with pytest.raises(ValueError):
            BackoffPolicy(base=0.0)
        with pytest.raises(ValueError):
            BackoffPolicy(base=2.0, cap=1.0)
        with pytest.raises(ValueError):
            BackoffPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            BackoffPolicy(multiplier=0.5)

    def test_session_hands_each_member_its_own_stream(self):
        sim, session, (alice,) = build_world(
            participants=1, backoff=BackoffPolicy(base=0.3, cap=2.4, jitter=0.1)
        )

        def scenario():
            snippet = yield from session.join(alice)
            return snippet

        snippet = run(sim, scenario())
        assert snippet.backoff is not None
        assert snippet.backoff.base == 0.3
        assert snippet.backoff.cap == 2.4
        assert snippet.backoff.jitter == 0.1
        session.close()


class TestFanoutTopology:
    def test_tree_fills_breadth_first(self):
        sim, session, browsers = build_world(participants=6)
        session.fanout_tree(branching=2)

        def scenario():
            relays = yield from join_all(session, browsers)
            yield from session.host_navigate("http://site.com/")
            yield from session.wait_until_synced()
            return relays

        relays = run(sim, scenario())
        # The host serves exactly branching direct children...
        assert sorted(session.agent.participants) == ["p0", "p1"]
        # ...and the next tier hangs under them, filled left to right.
        assert session._nodes["p0"].depth == 1
        assert session._nodes["p2"].parent == "p0"
        assert session._nodes["p3"].parent == "p1"
        assert session._nodes["p4"].parent == "p0"
        assert session._nodes["p5"].parent == "p1"
        assert session.tree_depth() == 2
        assert all(len(n.children) <= 2 for n in session._nodes.values())
        # Every member converged to the host's exact timestamp.
        assert all(r.doc_time == session.agent.doc_time for r in relays)
        session.close()

    def test_seeded_tie_breaking_is_reproducible(self):
        def shape(seed):
            sim, session, browsers = build_world(participants=7)
            session.fanout_tree(branching=2, seed=seed)

            def scenario():
                yield from join_all(session, browsers)
                yield from session.host_navigate("http://site.com/")
                yield from session.wait_until_synced()

            run(sim, scenario())
            parents = {
                name: node.parent for name, node in session._nodes.items()
            }
            session.close()
            return parents

        # The same seed rebuilds the identical tree; the seeded draw
        # still honors the breadth-first constraint.
        assert shape(42) == shape(42)
        first = shape(7)
        assert all(first[child] in set(first) | {None} for child in first)

    def test_unseeded_tree_keeps_earliest_joined_rule(self):
        sim, session, browsers = build_world(participants=4)
        session.fanout_tree(branching=2)
        assert session._tree_rng is None

        def scenario():
            yield from join_all(session, browsers)

        run(sim, scenario())
        # Deterministic legacy shape: ties go to the earliest joiner.
        assert session._nodes["p2"].parent == "p0"
        assert session._nodes["p3"].parent == "p1"
        session.close()

    def test_chain_propagates_content_and_doc_time(self):
        sim, session, browsers = build_world(participants=3)
        session.fanout_tree(branching=1)

        def scenario():
            relays = yield from join_all(session, browsers)
            yield from session.host_navigate("http://site.com/")
            yield from session.wait_until_synced()
            return relays

        relays = run(sim, scenario())
        # Degenerate chain by construction: root -> p0 -> p1 -> p2.
        assert session._nodes["p1"].parent == "p0"
        assert session._nodes["p2"].parent == "p1"
        leaf = relays[-1]
        assert leaf.browser.page.document.title == "Relay test"
        # Timestamps are adopted, not restamped: identical at every tier.
        times = {r.doc_time for r in relays}
        assert times == {session.agent.doc_time}
        session.close()

    def test_objects_are_served_by_the_relay_tier(self):
        sim, session, browsers = build_world(participants=2)
        session.fanout_tree(branching=1)

        def scenario():
            relays = yield from join_all(session, browsers)
            yield from session.host_navigate("http://site.com/")
            yield from session.wait_until_synced()
            return relays

        relays = run(sim, scenario())
        # The host answered object requests only for its direct child;
        # the leaf's logo came from the relay's cache.
        assert session.agent.stats["object_requests"] == 1
        assert relays[0].stats["object_requests"] == 1
        session.close()

    def test_small_edit_travels_as_delta_at_every_tier(self):
        sim, session, browsers = build_world(participants=2)
        session.fanout_tree(branching=1)

        def scenario():
            relays = yield from join_all(session, browsers)
            yield from session.host_navigate("http://site.com/")
            yield from session.wait_until_synced()
            edit_paragraph(session.host_browser, 3, "breaking news")
            yield from session.wait_until_synced()
            return relays

        relays = run(sim, scenario())
        mid, leaf = relays
        # Root -> relay link used a delta...
        assert session.agent.stats["delta_responses"] >= 1
        assert mid.upstream.stats.delta_updates >= 1
        # ...and the relay recomputed a delta for its own child.
        assert mid.stats["delta_responses"] >= 1
        assert leaf.upstream.stats.delta_updates >= 1
        assert leaf.upstream.stats.delta_failures == 0
        assert "breaking news" in leaf.browser.page.document.get_element_by_id(
            "p3"
        ).text_content
        session.close()

    def test_summary_accounts_host_savings(self):
        sim, session, browsers = build_world(participants=6)
        session.fanout_tree(branching=2)

        def scenario():
            yield from join_all(session, browsers)
            yield from session.host_navigate("http://site.com/")
            yield from session.wait_until_synced()

        run(sim, scenario())
        summary = session.relay_summary()
        assert summary["members"] == 6
        assert summary["depth"] == 2
        assert summary["branching"] == 2
        # Host carried 2 of the 6 full envelopes; the tier-1 relays
        # absorbed the other 4.
        assert summary["relay_content_bytes"] > summary["host_content_bytes"]
        assert set(summary["tiers"]) == {1, 2}
        assert summary["tiers"][1]["nodes"] == 2
        assert summary["tiers"][2]["nodes"] == 4
        assert summary["tiers"][1]["content_bytes"] > 0
        session.close()


class TestActionFlow:
    def test_cosmetic_actions_mirror_across_subtrees(self):
        # Tree: root -> {p0 -> {p2, p4}, p1 -> {p3, p5}}.
        sim, session, browsers = build_world(participants=6)
        session.fanout_tree(branching=2)

        def scenario():
            relays = yield from join_all(session, browsers)
            yield from session.host_navigate("http://site.com/")
            yield from session.wait_until_synced()
            # p2 (child of p0) moves its mouse.
            relays[2].upstream.report_mouse_move(11, 22)
            yield sim.timeout(2.0)
            return relays

        relays = run(sim, scenario())
        received = {
            r.relay_id: [
                a for a in r.upstream.stats.actions_received
                if isinstance(a, MouseMoveAction)
            ]
            for r in relays
        }
        # The sibling p4 gets the pointer from p0 directly; the other
        # subtree (p1 and its children) gets it via the root's
        # broadcast.  The originator never gets an echo, and p0 — a
        # pass-through conduit that mirrored and forwarded — receives
        # nothing from upstream (the root excludes the sender's subtree).
        assert received["p2"] == []
        assert received["p0"] == []
        assert len(received["p4"]) == 1
        assert len(received["p1"]) == 1
        assert len(received["p3"]) == 1
        assert len(received["p5"]) == 1
        assert relays[0].stats["actions_forwarded"] == 1
        session.close()

    def test_leaf_form_fill_reaches_the_host(self):
        sim, session, browsers = build_world(participants=2)
        session.fanout_tree(branching=1)

        def scenario():
            relays = yield from join_all(session, browsers)
            yield from session.host_navigate("http://site.com/")
            yield from session.wait_until_synced()
            leaf = relays[-1]
            form = leaf.browser.page.document.get_element_by_id("search")
            ref = form.get_attribute(REF_ATTRIBUTE)
            assert ref
            leaf.upstream.queue_action(FormFillAction(ref, {"q": "relay trees"}))
            yield sim.timeout(2.0)
            yield from session.wait_until_synced()
            return relays

        relays = run(sim, scenario())
        host_form = session.host_browser.page.document.get_element_by_id("search")
        field = [c for c in host_form.children if c.tag == "input"][0]
        assert field.get_attribute("value") == "relay trees"
        # The action climbed the chain: forwarded by the leaf's parent.
        assert relays[0].stats["actions_forwarded"] == 1
        assert session.agent.stats["actions_applied"] == 1
        session.close()


class TestRelayFailure:
    def test_orphans_reattach_to_grandparent_root(self):
        sim, session, browsers = build_world(participants=6)
        session.fanout_tree(branching=2)
        doc_times = {}
        violations = []

        def monitor(relay):
            while relay.relay_id in session.relays:
                previous = doc_times.get(relay.relay_id, 0)
                if relay.doc_time < previous:
                    violations.append((relay.relay_id, previous, relay.doc_time))
                doc_times[relay.relay_id] = relay.doc_time
                yield sim.timeout(0.05)

        def scenario():
            relays = yield from join_all(session, browsers)
            yield from session.host_navigate("http://site.com/")
            yield from session.wait_until_synced()
            for relay in relays:
                sim.process(monitor(relay))
            dead = session.fail_relay("p0")
            assert not dead.connected
            yield sim.timeout(20.0)  # orphans detect, back off, re-attach
            edit_paragraph(session.host_browser, 5, "after the failure")
            yield from session.wait_until_synced(timeout=30.0)
            return relays

        relays = run(sim, scenario())
        assert violations == []  # timestamps stayed monotone throughout
        by_id = {r.relay_id: r for r in relays}
        # p2 and p4 were p0's children; their grandparent is the root.
        for orphan in ("p2", "p4"):
            assert session._nodes[orphan].parent == ""
            assert by_id[orphan].stats["reattachments"] == 1
            assert "after the failure" in by_id[
                orphan
            ].browser.page.document.get_element_by_id("p5").text_content
        # The dead relay is gone from the roster everywhere.
        assert "p0" not in session.relays
        assert "p0" not in session.agent.participants
        session.close()

    def test_reattach_prefers_grandparent_relay_over_root(self):
        sim, session, browsers = build_world(participants=3)
        session.fanout_tree(branching=1)

        def scenario():
            relays = yield from join_all(session, browsers)
            yield from session.host_navigate("http://site.com/")
            yield from session.wait_until_synced()
            session.fail_relay("p1")  # the middle of root -> p0 -> p1 -> p2
            yield sim.timeout(20.0)
            edit_paragraph(session.host_browser, 1, "healed")
            yield from session.wait_until_synced(timeout=30.0)
            return relays

        relays = run(sim, scenario())
        # p2 re-homed under its grandparent p0 — not the root.
        assert session._nodes["p2"].parent == "p0"
        assert "p2" not in session.agent.participants
        assert relays[2].stats["reattachments"] == 1
        assert "healed" in relays[2].browser.page.document.get_element_by_id(
            "p1"
        ).text_content
        session.close()

    def test_root_is_the_last_resort(self):
        sim, session, browsers = build_world(participants=3)
        session.fanout_tree(branching=1)

        def scenario():
            relays = yield from join_all(session, browsers)
            yield from session.host_navigate("http://site.com/")
            yield from session.wait_until_synced()
            # Kill the whole ancestor chain above the leaf at once.
            session.fail_relay("p1")
            session.fail_relay("p0")
            yield sim.timeout(40.0)  # first try (dead grandparent) must fail
            edit_paragraph(session.host_browser, 2, "root rescue")
            yield from session.wait_until_synced(timeout=30.0)
            return relays

        relays = run(sim, scenario())
        leaf = relays[2]
        assert session._nodes["p2"].parent == ""
        assert "p2" in session.agent.participants
        assert leaf.stats["reattachments"] == 1
        assert leaf.stats["upstream_failures"] >= 1
        assert "root rescue" in leaf.browser.page.document.get_element_by_id(
            "p2"
        ).text_content
        session.close()

    def test_reattached_orphan_can_resync_with_delta(self):
        """An orphan re-attaches without renavigating, so its last
        acknowledged state survives and the new upstream may answer the
        first changed poll with a delta instead of a full resync."""
        sim, session, browsers = build_world(participants=3)
        session.fanout_tree(branching=1)

        def scenario():
            relays = yield from join_all(session, browsers)
            yield from session.host_navigate("http://site.com/")
            yield from session.wait_until_synced()
            time_before = relays[2].doc_time
            session.fail_relay("p1")
            yield sim.timeout(20.0)
            assert relays[2].doc_time >= time_before
            edit_paragraph(session.host_browser, 7, "delta after failover")
            yield from session.wait_until_synced(timeout=30.0)
            return relays

        relays = run(sim, scenario())
        leaf = relays[2]
        assert leaf.upstream.stats.delta_updates >= 1
        assert "delta after failover" in leaf.browser.page.document.get_element_by_id(
            "p7"
        ).text_content
        session.close()


class TestRelayAuth:
    def test_secret_flows_through_every_tier(self):
        sim, session, browsers = build_world(participants=2, secret="s3cret-tree")
        session.fanout_tree(branching=1)

        def scenario():
            relays = yield from join_all(session, browsers)
            yield from session.host_navigate("http://site.com/")
            yield from session.wait_until_synced()
            return relays

        relays = run(sim, scenario())
        assert session.agent.stats["auth_failures"] == 0
        assert all(r.stats["auth_failures"] == 0 for r in relays)
        assert relays[-1].doc_time == session.agent.doc_time
        session.close()

    def test_forged_relay_is_rejected(self):
        sim, session, browsers = build_world(participants=1, secret="s3cret-tree")
        session.fanout_tree(branching=2)
        network = session.host_browser.host.network
        rogue_pc = Host(network, "rogue-pc", LAN_PROFILE, segment="campus")
        rogue_browser = Browser(rogue_pc, name="mallory")
        rogue = RelayAgent(
            upstream_url=session.agent.url,
            secret="wrong-guess",
            relay_id="mallory",
        )
        rogue.install(rogue_browser)

        def scenario():
            yield from join_all(session, browsers)
            yield from session.host_navigate("http://site.com/")
            yield from session.wait_until_synced()
            yield from rogue.connect_upstream()
            yield sim.timeout(3.0)

        run(sim, scenario())
        # The root rejected every forged poll; the rogue never received
        # content and so can never serve any downstream.
        assert session.agent.stats["auth_failures"] > 0
        assert rogue.doc_time == 0
        assert rogue.upstream.stats.content_updates == 0
        assert "mallory" not in session.agent.participants
        rogue.uninstall()
        session.close()
