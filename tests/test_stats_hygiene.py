"""The stats-hygiene lint that CI runs over the source tree.

``benchmarks/check_stats_hygiene.py`` fails the build when any component
pokes its stats dict directly (``self.stats["x"] += 1``) instead of
going through the metrics-registry facade.  These tests pin down what
counts as a violation — and that the shipped tree is clean.
"""

import importlib.util
import os

import pytest

_SCRIPT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "benchmarks",
    "check_stats_hygiene.py",
)
_spec = importlib.util.spec_from_file_location("check_stats_hygiene", _SCRIPT)
hygiene = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(hygiene)


class TestScanSource:
    @pytest.mark.parametrize(
        "line",
        [
            'self.stats["polls"] += 1',
            'agent.stats["errors"] -= 2',
            'self.stats["ratio"] *= 0.5',
            'self.stats["last_sync"] = 0.25',
            "self.stats[key] = value",
            "self.stats.update({'polls': 3})",
            "relay.stats . update(extra)",
        ],
    )
    def test_direct_mutations_are_violations(self, line):
        assert hygiene.scan_source(line) == [(1, line)]

    @pytest.mark.parametrize(
        "line",
        [
            'self.stats.inc("polls")',
            'self.stats.set("last_sync", 0.25)',
            'self.stats.observe("sync_seconds", waited)',
            'if self.stats["polls"] == 3:',
            'assert agent.stats["polls"] >= 1',
            'count = snapshot.stats["polls"]',
            "stats = dict(self.stats)",
        ],
    )
    def test_facade_calls_and_reads_pass(self, line):
        assert hygiene.scan_source(line) == []

    def test_comments_are_skipped_and_lines_numbered(self):
        text = "\n".join(
            [
                'self.stats.inc("polls")',
                '# self.stats["polls"] += 1  (historical example)',
                'self.stats["polls"] += 1',
            ]
        )
        assert hygiene.scan_source(text) == [(3, 'self.stats["polls"] += 1')]


class TestScanTree:
    def test_reports_path_line_and_content(self, tmp_path):
        package = tmp_path / "pkg"
        package.mkdir()
        (package / "bad.py").write_text('def f(a):\n    a.stats["x"] += 1\n')
        (package / "good.py").write_text('def f(a):\n    a.stats.inc("x")\n')
        (package / "notes.txt").write_text('a.stats["x"] += 1\n')  # not python
        records = hygiene.scan_tree(str(package))
        assert len(records) == 1
        assert records[0].endswith('bad.py:2: a.stats["x"] += 1')

    def test_obs_subtree_is_exempt(self, tmp_path):
        package = tmp_path / "pkg"
        (package / "obs").mkdir(parents=True)
        (package / "obs" / "registry.py").write_text('self.stats["x"] = 1\n')
        assert hygiene.scan_tree(str(package)) == []


class TestMain:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text('self.stats.inc("polls")\n')
        assert hygiene.main([str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_violations_exit_nonzero_with_listing(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text('self.stats["polls"] += 1\n')
        assert hygiene.main([str(tmp_path)]) == 1
        err = capsys.readouterr().err
        assert "bad.py:1" in err
        assert "stats.inc/set/observe" in err

    def test_missing_root_exits_nonzero(self, tmp_path):
        assert hygiene.main([str(tmp_path / "nope")]) == 1


def test_shipped_source_tree_is_clean():
    """The lint CI enforces: src/repro has no direct stats mutations."""
    assert hygiene.scan_tree(hygiene.default_root()) == []
