"""Property tests for the session directory's rebalancing invariants.

Hypothesis drives random membership churn against ``SessionDirectory``
and asserts the contract the agent pool depends on: no session ever
maps to a dead instance, adding one instance moves a minimal key range
(all of it to the newcomer), removing one instance moves only that
instance's keys, and any churn sequence keeps per-instance load within
the bounded-load cap.
"""

from math import ceil

from hypothesis import given, settings, strategies as st

from repro.core import SessionDirectory

KEYS = st.lists(
    st.text(alphabet="abcdefgh0123456789", min_size=1, max_size=8),
    min_size=1,
    max_size=60,
    unique=True,
)
INSTANCES = st.lists(
    st.sampled_from(["s0", "s1", "s2", "s3", "s4", "s5"]),
    min_size=1,
    max_size=6,
    unique=True,
)
SEEDS = st.integers(min_value=0, max_value=2**16)


def build(instances, keys, seed):
    directory = SessionDirectory(replicas=16, seed=seed)
    for instance in instances:
        directory.add_instance(instance)
    for key in keys:
        directory.place(key)
    return directory


@given(instances=INSTANCES, keys=KEYS, seed=SEEDS)
@settings(max_examples=60, deadline=None)
def test_no_key_ever_maps_to_a_dead_instance(instances, keys, seed):
    directory = build(instances, keys, seed)
    live = set(instances)
    for victim in list(instances):
        if len(live) == 1:
            break
        live.discard(victim)
        directory.remove_instance(victim)
        assert set(directory.assignments.values()) <= live
        assert set(directory.load()) == live


@given(instances=INSTANCES, keys=KEYS, seed=SEEDS)
@settings(max_examples=60, deadline=None)
def test_adding_one_instance_moves_a_minimal_range(instances, keys, seed):
    directory = build(instances, keys, seed)
    before = dict(directory.assignments)
    migrations = directory.add_instance("newcomer")
    # Churn bound: at most ceil(K / N_new) keys move, and every one of
    # them lands on the instance that just joined.
    assert len(migrations) <= ceil(len(keys) / (len(instances) + 1))
    for key, (old, new) in migrations.items():
        assert old == before[key]
        assert new == "newcomer"
    for key in set(keys) - set(migrations):
        assert directory.assignments[key] == before[key]


@given(instances=INSTANCES, keys=KEYS, seed=SEEDS)
@settings(max_examples=60, deadline=None)
def test_removing_one_instance_moves_only_its_keys(instances, keys, seed):
    if len(instances) < 2:
        instances = instances + ["extra"]
    directory = build(instances, keys, seed)
    before = dict(directory.assignments)
    victim = instances[0]
    migrations = directory.remove_instance(victim)
    assert set(migrations) == {k for k, owner in before.items() if owner == victim}
    for key in set(keys) - set(migrations):
        assert directory.assignments[key] == before[key]


@given(instances=INSTANCES, keys=KEYS, seed=SEEDS)
@settings(max_examples=60, deadline=None)
def test_promotion_hands_every_orphan_to_the_standby(instances, keys, seed):
    if len(instances) < 2:
        instances = instances + ["extra"]
    directory = build(instances, keys, seed)
    victim = instances[0]
    standby = directory.successor(victim)
    orphans = {k for k, owner in directory.assignments.items() if owner == victim}
    migrations = directory.remove_instance(victim, promote_to=standby)
    assert set(migrations) == orphans
    assert all(new == standby for _old, new in migrations.values())
    assert all(directory.assignments[k] == standby for k in orphans)


@given(keys=KEYS, seed=SEEDS, churn=st.lists(st.integers(0, 2), max_size=10))
@settings(max_examples=40, deadline=None)
def test_churn_conserves_members_on_live_instances(keys, seed, churn):
    directory = SessionDirectory(replicas=16, load_factor=1.25, seed=seed)
    directory.add_instance("i0")
    for key in keys:
        directory.place(key)
    next_id = 1
    for op in churn:
        live = directory.instances()
        if op == 0 or len(live) == 1:
            directory.add_instance("i%d" % next_id)
            next_id += 1
        elif op == 1:
            directory.remove_instance(live[0])
        else:
            victim = live[0]
            standby = directory.successor(victim)
            directory.remove_instance(victim, promote_to=standby)
        load = directory.load()
        # Every member is still assigned, and only to live instances.
        assert sum(load.values()) == len(keys)
        assert set(load) == set(directory.instances())
        assert set(directory.assignments.values()) <= set(load)


@given(keys=KEYS, seed=SEEDS, extra=st.integers(1, 4))
@settings(max_examples=40, deadline=None)
def test_fresh_placement_honors_bounded_load(keys, seed, extra):
    # The cap is a placement-time invariant: keys placed against the
    # current membership never overfill an instance (sticky survivors
    # of earlier churn may — availability beats rebalance-on-shrink).
    directory = SessionDirectory(replicas=16, load_factor=1.25, seed=seed)
    for index in range(1 + extra):
        directory.add_instance("i%d" % index)
    for key in keys:
        directory.place(key)
    cap = directory.capacity()
    assert all(count <= cap for count in directory.load().values())
