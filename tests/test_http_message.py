"""Unit tests for HTTP message types and form encoding."""

import pytest

from repro.http import (
    Headers,
    HttpError,
    HttpRequest,
    HttpResponse,
    encode_form,
    html_response,
    quote,
    xml_response,
)


class TestHeaders:
    def test_case_insensitive_get(self):
        headers = Headers([("Content-Type", "text/html")])
        assert headers.get("content-type") == "text/html"
        assert headers.get("CONTENT-TYPE") == "text/html"

    def test_get_default(self):
        assert Headers().get("X-Missing", "fallback") == "fallback"

    def test_set_replaces_all(self):
        headers = Headers([("X-A", "1"), ("x-a", "2")])
        headers.set("X-A", "3")
        assert headers.get_all("X-A") == ["3"]

    def test_add_keeps_duplicates(self):
        headers = Headers()
        headers.add("Set-Cookie", "a=1")
        headers.add("Set-Cookie", "b=2")
        assert headers.get_all("set-cookie") == ["a=1", "b=2"]

    def test_remove(self):
        headers = Headers([("A", "1"), ("B", "2")])
        headers.remove("a")
        assert "A" not in headers
        assert "B" in headers

    def test_copy_is_independent(self):
        original = Headers([("A", "1")])
        copy = original.copy()
        copy.set("A", "2")
        assert original.get("A") == "1"

    def test_wire_lines(self):
        headers = Headers([("Host", "a.com"), ("X-N", "v")])
        assert headers.wire_lines() == b"Host: a.com\r\nX-N: v\r\n"

    def test_iteration_preserves_order(self):
        pairs = [("B", "2"), ("A", "1"), ("C", "3")]
        assert list(Headers(pairs)) == pairs


class TestHttpRequest:
    def test_to_bytes_round_shape(self):
        request = HttpRequest("GET", "/index.html", Headers([("Host", "a.com")]))
        wire = request.to_bytes()
        assert wire.startswith(b"GET /index.html HTTP/1.1\r\n")
        assert b"Host: a.com\r\n" in wire
        assert wire.endswith(b"\r\n\r\n")

    def test_body_sets_content_length(self):
        request = HttpRequest("POST", "/", body=b"hello")
        assert request.headers.get("Content-Length") == "5"

    def test_path_and_query_split(self):
        request = HttpRequest("GET", "/search?q=mac+book&page=2")
        assert request.path == "/search"
        assert request.query == "q=mac+book&page=2"
        assert request.query_params() == {"q": "mac book", "page": "2"}

    def test_query_params_empty(self):
        assert HttpRequest("GET", "/plain").query_params() == {}

    def test_form_params_decoding(self):
        request = HttpRequest("POST", "/", body=b"name=Alice+B&city=New%20York")
        assert request.form_params() == {"name": "Alice B", "city": "New York"}

    def test_bad_method_rejected(self):
        with pytest.raises(HttpError):
            HttpRequest("get", "/")
        with pytest.raises(HttpError):
            HttpRequest("", "/")

    def test_empty_target_rejected(self):
        with pytest.raises(HttpError):
            HttpRequest("GET", "")

    def test_keep_alive_default_http11(self):
        assert HttpRequest("GET", "/").keep_alive

    def test_connection_close(self):
        request = HttpRequest("GET", "/", Headers([("Connection", "close")]))
        assert not request.keep_alive

    def test_http10_defaults_to_close(self):
        request = HttpRequest("GET", "/", version="HTTP/1.0")
        assert not request.keep_alive


class TestHttpResponse:
    def test_reason_defaults_from_status(self):
        assert HttpResponse(404).reason == "Not Found"

    def test_ok_range(self):
        assert HttpResponse(200).ok
        assert HttpResponse(204).ok
        assert not HttpResponse(404).ok
        assert not HttpResponse(302).ok

    def test_content_type_strips_parameters(self):
        response = HttpResponse(
            200, Headers([("Content-Type", "text/html; charset=utf-8")])
        )
        assert response.content_type == "text/html"

    def test_content_length_always_present(self):
        response = HttpResponse(200, body=b"abc")
        assert response.headers.get("Content-Length") == "3"

    def test_to_bytes(self):
        response = HttpResponse(200, body=b"hi")
        wire = response.to_bytes()
        assert wire.startswith(b"HTTP/1.1 200 OK\r\n")
        assert wire.endswith(b"\r\n\r\nhi")

    def test_text_decoding(self):
        assert HttpResponse(200, body="héllo".encode("utf-8")).text() == "héllo"

    def test_helpers(self):
        assert html_response("<p>x</p>").content_type == "text/html"
        assert xml_response("<a/>").content_type == "application/xml"


class TestFormEncoding:
    def test_quote_safe_chars_untouched(self):
        assert quote("abc-._~XYZ123") == "abc-._~XYZ123"

    def test_quote_space_and_unicode(self):
        assert quote("a b") == "a%20b"
        assert quote("é") == "%C3%A9"

    def test_encode_form_round_trip(self):
        params = {"name": "Alice B", "addr": "5th Ave & 52nd"}
        body = encode_form(params)
        request = HttpRequest("POST", "/", body=body)
        assert request.form_params() == params
