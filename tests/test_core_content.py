"""Tests for the Fig. 3 content-generation pipeline."""

import pytest

from repro.browser import BrowserCache
from repro.core import ContentGenerator, REF_ATTRIBUTE
from repro.core.security import sign_request_target, verify_request_target
from repro.html import parse_document, serialize_document
from repro.net import parse_url

BASE = parse_url("http://site.com/dir/page.html")

MARKUP = (
    "<html><head><title>T</title>"
    '<link rel="stylesheet" href="css/main.css">'
    '<script src="/js/app.js"></script></head>'
    "<body>"
    '<img src="../images/logo.png">'
    '<img src="http://cdn.other.com/banner.png">'
    '<a href="next.html">next</a>'
    '<form action="/search" method="GET"><input type="text" name="q"></form>'
    "</body></html>"
)


def generate(markup=MARKUP, cache=None, cache_mode=False, sign=None, url_map=None):
    document = parse_document(markup)
    generator = ContentGenerator()
    session = cache.open_read_session() if cache is not None else None
    result = generator.generate(
        document,
        BASE,
        doc_time=1000,
        cache_session=session,
        cache_mode=cache_mode,
        url_map=url_map,
        sign_target=sign,
    )
    return document, result


def participant_view(result):
    """Reassemble the participant-side document from the envelope."""
    from repro.html import Document, Element

    document = Document()
    html = Element("html")
    document.append_child(html)
    head = Element("head")
    html.append_child(head)
    for record in result.content.head_children:
        child = Element(record.tag, dict(record.attributes))
        child.inner_html = record.inner_html
        head.append_child(child)
    for top in result.content.top_elements:
        element = Element(top.name, dict(top.attributes))
        element.inner_html = top.inner_html
        html.append_child(element)
    return document


class TestClonePurity:
    def test_host_document_never_mutated(self):
        document, _result = generate()
        again = serialize_document(document)
        assert again == serialize_document(parse_document(MARKUP))

    def test_host_unchanged_in_cache_mode(self):
        cache = BrowserCache()
        cache.store("http://site.com/images/logo.png", "image/png", b"x")
        cache.store("http://site.com/css/main.css", "text/css", b"y")
        document, _result = generate(cache=cache, cache_mode=True)
        assert serialize_document(document) == serialize_document(parse_document(MARKUP))


class TestUrlRewriting:
    def test_relative_urls_become_absolute(self):
        _document, result = generate()
        view = participant_view(result)
        img = view.get_elements_by_tag_name("img")[0]
        assert img.get_attribute("src") == "http://site.com/images/logo.png"
        link = view.get_elements_by_tag_name("link")[0]
        assert link.get_attribute("href") == "http://site.com/dir/css/main.css"
        script = view.get_elements_by_tag_name("script")[0]
        assert script.get_attribute("src") == "http://site.com/js/app.js"

    def test_absolute_urls_untouched(self):
        _document, result = generate()
        view = participant_view(result)
        banner = view.get_elements_by_tag_name("img")[1]
        assert banner.get_attribute("src") == "http://cdn.other.com/banner.png"

    def test_navigation_urls_made_absolute(self):
        _document, result = generate()
        view = participant_view(result)
        anchor = view.get_elements_by_tag_name("a")[0]
        assert anchor.get_attribute("href") == "http://site.com/dir/next.html"
        form = view.get_elements_by_tag_name("form")[0]
        assert form.get_attribute("action") == "http://site.com/search"

    def test_url_map_overrides_resolution(self):
        url_map = {"../images/logo.png": "http://mirror.site.com/logo.png"}
        _document, result = generate(url_map=url_map)
        view = participant_view(result)
        img = view.get_elements_by_tag_name("img")[0]
        assert img.get_attribute("src") == "http://mirror.site.com/logo.png"

    def test_rewrite_counter(self):
        _document, result = generate()
        # logo.png, main.css, app.js, next.html, /search action
        assert result.urls_rewritten == 5


class TestCacheMode:
    def build_cache(self):
        cache = BrowserCache()
        cache.store("http://site.com/images/logo.png", "image/png", b"img")
        cache.store("http://site.com/dir/css/main.css", "text/css", b"css")
        return cache

    def test_cached_objects_point_to_agent(self):
        cache = self.build_cache()
        _document, result = generate(cache=cache, cache_mode=True)
        view = participant_view(result)
        img = view.get_elements_by_tag_name("img")[0]
        assert img.get_attribute("src").startswith("/obj?key=")
        link = view.get_elements_by_tag_name("link")[0]
        assert link.get_attribute("href").startswith("/obj?key=")

    def test_uncached_objects_stay_absolute(self):
        cache = self.build_cache()
        _document, result = generate(cache=cache, cache_mode=True)
        view = participant_view(result)
        script = view.get_elements_by_tag_name("script")[0]
        assert script.get_attribute("src") == "http://site.com/js/app.js"
        banner = view.get_elements_by_tag_name("img")[1]
        assert banner.get_attribute("src") == "http://cdn.other.com/banner.png"

    def test_mapping_table_maps_target_to_cache_key(self):
        cache = self.build_cache()
        _document, result = generate(cache=cache, cache_mode=True)
        assert set(result.object_map.values()) == {
            "http://site.com/images/logo.png",
            "http://site.com/dir/css/main.css",
        }
        for target in result.object_map:
            assert target.startswith("/obj?key=")

    def test_non_cache_mode_keeps_origin_urls(self):
        cache = self.build_cache()
        _document, result = generate(cache=cache, cache_mode=False)
        view = participant_view(result)
        img = view.get_elements_by_tag_name("img")[0]
        assert img.get_attribute("src") == "http://site.com/images/logo.png"
        assert result.object_map == {}

    def test_signed_object_urls_verify(self):
        cache = self.build_cache()
        secret = "shared-session-secret"
        sign = lambda target: sign_request_target(secret, "GET", target)
        _document, result = generate(cache=cache, cache_mode=True, sign=sign)
        view = participant_view(result)
        img_src = view.get_elements_by_tag_name("img")[0].get_attribute("src")
        unsigned = verify_request_target(secret, "GET", img_src)
        assert unsigned in result.object_map

    def test_cache_rewrite_counter(self):
        cache = self.build_cache()
        _document, result = generate(cache=cache, cache_mode=True)
        assert result.cache_rewrites == 2


class TestEventRewriting:
    def test_form_onsubmit_rewritten(self):
        _document, result = generate()
        view = participant_view(result)
        form = view.get_elements_by_tag_name("form")[0]
        assert form.get_attribute("onsubmit") == "return rcbSubmit(this)"
        assert form.get_attribute(REF_ATTRIBUTE) == "form:0"

    def test_anchor_onclick_rewritten(self):
        _document, result = generate()
        view = participant_view(result)
        anchor = view.get_elements_by_tag_name("a")[0]
        assert anchor.get_attribute("onclick") == "return rcbClick(this)"
        assert anchor.get_attribute(REF_ATTRIBUTE) == "a:0"

    def test_input_onchange_rewritten(self):
        _document, result = generate()
        view = participant_view(result)
        field = view.get_elements_by_tag_name("input")[0]
        assert field.get_attribute("onchange") == "rcbInput(this)"

    def test_references_match_host_document_order(self):
        from repro.core import resolve_reference

        document, result = generate(
            "<html><body>"
            "<a href='/1'>1</a><form id='f'></form><a href='/2'>2</a>"
            "</body></html>"
        )
        view = participant_view(result)
        second_anchor = view.get_elements_by_tag_name("a")[1]
        ref = second_anchor.get_attribute(REF_ATTRIBUTE)
        host_element = resolve_reference(document, ref)
        assert host_element.get_attribute("href") == "/2"

    def test_existing_handlers_replaced(self):
        _document, result = generate(
            "<html><body><form onsubmit='evil()'></form></body></html>"
        )
        view = participant_view(result)
        form = view.get_elements_by_tag_name("form")[0]
        assert form.get_attribute("onsubmit") == "return rcbSubmit(this)"


class TestExtraction:
    def test_head_children_extracted_in_order(self):
        _document, result = generate()
        tags = [c.tag for c in result.content.head_children]
        assert tags == ["title", "link", "script"]

    def test_body_extracted(self):
        _document, result = generate()
        (top,) = result.content.top_elements
        assert top.name == "body"
        assert "rcbSubmit" in top.inner_html

    def test_frameset_extraction(self):
        _document, result = generate(
            "<html><head><title>F</title></head>"
            "<frameset rows='1,2'><frame src='a.html'></frameset>"
            "<noframes><p>none</p></noframes></html>"
        )
        names = [t.name for t in result.content.top_elements]
        assert names == ["frameset", "noframes"]
        frameset = result.content.top_elements[0]
        assert 'src="http://site.com/dir/a.html"' in frameset.inner_html

    def test_doc_time_carried(self):
        _document, result = generate()
        assert result.content.doc_time == 1000

    def test_generation_seconds_positive(self):
        _document, result = generate()
        assert result.generation_seconds > 0

    def test_document_without_root_rejected(self):
        from repro.html import Document

        with pytest.raises(ValueError):
            ContentGenerator().generate(Document(), BASE, doc_time=1)
