"""Unit tests for the DOM tree types."""

import pytest

from repro.html import Document, DomError, Element, Text, parse_document


class TestTreeManipulation:
    def test_append_child_sets_parent(self):
        parent = Element("div")
        child = Element("span")
        parent.append_child(child)
        assert child.parent is parent
        assert parent.child_nodes == [child]

    def test_append_moves_node_between_parents(self):
        first = Element("div")
        second = Element("div")
        child = Element("span")
        first.append_child(child)
        second.append_child(child)
        assert first.child_nodes == []
        assert child.parent is second

    def test_insert_before(self):
        parent = Element("ul")
        a, b, c = Element("li"), Element("li"), Element("li")
        parent.append_child(a)
        parent.append_child(c)
        parent.insert_before(b, c)
        assert parent.child_nodes == [a, b, c]

    def test_insert_before_missing_reference(self):
        parent = Element("div")
        with pytest.raises(DomError):
            parent.insert_before(Element("a"), Element("b"))

    def test_remove_child(self):
        parent = Element("div")
        child = Text("x")
        parent.append_child(child)
        parent.remove_child(child)
        assert parent.child_nodes == []
        assert child.parent is None

    def test_remove_non_child_rejected(self):
        with pytest.raises(DomError):
            Element("div").remove_child(Text("x"))

    def test_replace_child(self):
        parent = Element("div")
        old = Element("a")
        parent.append_child(old)
        new = Element("b")
        parent.replace_child(new, old)
        assert parent.child_nodes == [new]
        assert old.parent is None

    def test_cycle_rejected(self):
        outer = Element("div")
        inner = Element("div")
        outer.append_child(inner)
        with pytest.raises(DomError):
            inner.append_child(outer)
        with pytest.raises(DomError):
            outer.append_child(outer)

    def test_document_cannot_be_child(self):
        with pytest.raises(DomError):
            Element("div").append_child(Document())

    def test_remove_all_children(self):
        parent = Element("div")
        for _ in range(3):
            parent.append_child(Element("span"))
        parent.remove_all_children()
        assert parent.child_nodes == []


class TestAttributes:
    def test_set_get(self):
        el = Element("a", {"href": "/x"})
        assert el.get_attribute("href") == "/x"
        assert el.get_attribute("HREF") == "/x"

    def test_names_lowercased(self):
        el = Element("div")
        el.set_attribute("OnClick", "go()")
        assert el.attributes == [("onclick", "go()")]

    def test_remove_attribute(self):
        el = Element("div", {"id": "x"})
        el.remove_attribute("ID")
        assert not el.has_attribute("id")

    def test_empty_name_rejected(self):
        with pytest.raises(DomError):
            Element("div").set_attribute("", "v")

    def test_none_value_becomes_empty(self):
        el = Element("input")
        el.set_attribute("disabled", None)
        assert el.get_attribute("disabled") == ""


class TestTraversal:
    def build(self):
        doc = parse_document(
            "<html><head><title>T</title></head>"
            "<body><div id='main'><p>one</p><p>two</p></div></body></html>"
        )
        return doc

    def test_descendant_elements_preorder(self):
        doc = self.build()
        tags = [el.tag for el in doc.descendant_elements()]
        assert tags == ["html", "head", "title", "body", "div", "p", "p"]

    def test_get_elements_by_tag_name(self):
        doc = self.build()
        assert len(doc.get_elements_by_tag_name("p")) == 2
        assert doc.get_elements_by_tag_name("P")[0].text_content == "one"

    def test_get_element_by_id(self):
        doc = self.build()
        assert doc.get_element_by_id("main").tag == "div"
        assert doc.get_element_by_id("nope") is None

    def test_text_content_concatenates(self):
        doc = self.build()
        assert doc.body.text_content == "onetwo"

    def test_children_excludes_text(self):
        el = Element("div")
        el.append_child(Text("x"))
        el.append_child(Element("span"))
        assert [c.tag for c in el.children] == ["span"]


class TestDocumentAccessors:
    def test_head_body_title(self):
        doc = parse_document("<html><head><title>Hello</title></head><body>B</body></html>")
        assert doc.head.tag == "head"
        assert doc.body.tag == "body"
        assert doc.title == "Hello"

    def test_frameset_document(self):
        doc = parse_document(
            "<html><head></head><frameset rows='50%,50%'>"
            "<frame src='a.html'><frame src='b.html'></frameset></html>"
        )
        assert doc.body is None
        assert doc.frameset is not None
        assert len(doc.frameset.get_elements_by_tag_name("frame")) == 2

    def test_create_element_strips_trailing_underscore(self):
        doc = Document()
        el = doc.create_element("label", for_="x", id="y")
        assert el.get_attribute("for") == "x"
        assert el.get_attribute("id") == "y"


class TestClone:
    def test_deep_clone_independent(self):
        doc = parse_document("<html><body><div id='a'><p>text</p></div></body></html>")
        copy = doc.clone()
        copy.get_element_by_id("a").set_attribute("id", "changed")
        copy.body.get_elements_by_tag_name("p")[0].child_nodes[0].data = "altered"
        assert doc.get_element_by_id("a") is not None
        assert doc.body.text_content == "text"

    def test_shallow_clone_has_no_children(self):
        el = Element("div", {"id": "x"})
        el.append_child(Element("span"))
        copy = el.clone(deep=False)
        assert copy.get_attribute("id") == "x"
        assert copy.child_nodes == []

    def test_clone_preserves_doctype(self):
        doc = parse_document("<!DOCTYPE html><html><body></body></html>")
        assert doc.clone().doctype == doc.doctype


class TestInnerHtml:
    def test_get_inner_html(self):
        el = Element("div")
        el.append_child(Element("b"))
        el.child_nodes[0].append_child(Text("bold"))
        assert el.inner_html == "<b>bold</b>"

    def test_set_inner_html_replaces_children(self):
        el = Element("div")
        el.append_child(Text("old"))
        el.inner_html = "<p>new</p><p>er</p>"
        assert [c.tag for c in el.children] == ["p", "p"]
        assert el.text_content == "newer"

    def test_set_inner_html_round_trip(self):
        el = Element("div")
        el.inner_html = '<a href="/x?a=1&amp;b=2">link &amp; more</a>'
        assert el.inner_html == '<a href="/x?a=1&amp;b=2">link &amp; more</a>'

    def test_outer_html(self):
        el = Element("img", {"src": "/x.png", "alt": ""})
        assert el.outer_html == '<img src="/x.png" alt>'

    def test_text_escaped_in_inner_html(self):
        el = Element("div")
        el.append_child(Text("a < b & c"))
        assert el.inner_html == "a &lt; b &amp; c"
