"""Integration tests: HttpClient against HttpServer over simulated TCP."""

import pytest

from repro.http import (
    CookieJar,
    Headers,
    HttpClient,
    HttpResponse,
    HttpServer,
    RequestFailed,
    html_response,
)
from repro.net import LAN_PROFILE, SERVER_PROFILE, Host, Network
from repro.sim import Simulator


def build():
    sim = Simulator()
    network = Network(sim)
    server_host = Host(network, "www.example.com", SERVER_PROFILE, segment="internet")
    client_host = Host(network, "client-pc", LAN_PROFILE, segment="campus")
    return sim, network, server_host, client_host


def echo_handler(request, client_name):
    body = ("%s %s from %s" % (request.method, request.target, client_name)).encode()
    return HttpResponse(200, Headers([("Content-Type", "text/plain")]), body)


def run(sim, generator):
    return sim.run_until_complete(sim.process(generator))


class TestBasicExchange:
    def test_get_round_trip(self):
        sim, _network, server_host, client_host = build()
        HttpServer(server_host, 80, echo_handler).start()
        client = HttpClient(client_host)

        def scenario():
            response = yield from client.get("http://www.example.com/index.html")
            return response

        response = run(sim, scenario())
        assert response.status == 200
        assert response.body == b"GET /index.html from client-pc"
        assert response.headers.get("Server") == "repro-httpd"

    def test_post_carries_body(self):
        sim, _network, server_host, client_host = build()
        received = {}

        def handler(request, client_name):
            received["body"] = request.body
            received["ctype"] = request.headers.get("Content-Type")
            return HttpResponse(200)

        HttpServer(server_host, 80, handler).start()
        client = HttpClient(client_host)

        def scenario():
            return (yield from client.post("http://www.example.com/form", b"a=1&b=2"))

        response = run(sim, scenario())
        assert response.status == 200
        assert received["body"] == b"a=1&b=2"
        assert received["ctype"] == "application/x-www-form-urlencoded"

    def test_host_header_set(self):
        sim, _network, server_host, client_host = build()
        seen = {}

        def handler(request, client_name):
            seen["host"] = request.headers.get("Host")
            return HttpResponse(200)

        HttpServer(server_host, 8080, handler).start()
        client = HttpClient(client_host)

        def scenario():
            return (yield from client.get("http://www.example.com:8080/"))

        run(sim, scenario())
        assert seen["host"] == "www.example.com:8080"

    def test_generator_handler_with_delay(self):
        sim, _network, server_host, client_host = build()

        def handler(request, client_name):
            yield server_host.sim.timeout(0.5)
            return html_response("<p>slow</p>")

        HttpServer(server_host, 80, handler).start()
        client = HttpClient(client_host)

        def scenario():
            response = yield from client.get("http://www.example.com/")
            return (response, sim.now)

        response, elapsed = run(sim, scenario())
        assert response.status == 200
        assert elapsed > 0.5

    def test_processing_delay_applied(self):
        sim, _network, server_host, client_host = build()
        HttpServer(server_host, 80, echo_handler, processing_delay=1.0).start()
        client = HttpClient(client_host)

        def scenario():
            yield from client.get("http://www.example.com/")
            return sim.now

        assert run(sim, scenario()) > 1.0


class TestKeepAliveAndPooling:
    def test_connection_reused_across_requests(self):
        sim, _network, server_host, client_host = build()
        server = HttpServer(server_host, 80, echo_handler).start()
        client = HttpClient(client_host)

        def scenario():
            yield from client.get("http://www.example.com/a")
            yield from client.get("http://www.example.com/b")

        run(sim, scenario())
        assert server.connections_accepted == 1
        assert server.requests_served == 2

    def test_connection_close_honoured(self):
        sim, _network, server_host, client_host = build()
        server = HttpServer(server_host, 80, echo_handler).start()
        client = HttpClient(client_host)

        def scenario():
            headers = Headers([("Connection", "close")])
            yield from client.request("GET", "http://www.example.com/a", headers)
            yield from client.request("GET", "http://www.example.com/b", headers)

        run(sim, scenario())
        assert server.connections_accepted == 2

    def test_second_request_faster_with_pool(self):
        sim, _network, server_host, client_host = build()
        HttpServer(server_host, 80, echo_handler).start()
        client = HttpClient(client_host)

        def scenario():
            start = sim.now
            yield from client.get("http://www.example.com/a")
            first = sim.now - start
            start = sim.now
            yield from client.get("http://www.example.com/b")
            second = sim.now - start
            return first, second

        first, second = run(sim, scenario())
        assert second < first  # no handshake on the pooled connection


class TestFailures:
    def test_unknown_host_raises(self):
        sim, _network, _server_host, client_host = build()
        client = HttpClient(client_host)

        def scenario():
            with pytest.raises(RequestFailed):
                yield from client.get("http://no-such-host.com/")
            return "done"

        assert run(sim, scenario()) == "done"

    def test_closed_port_raises(self):
        sim, _network, _server_host, client_host = build()
        client = HttpClient(client_host)

        def scenario():
            with pytest.raises(RequestFailed):
                yield from client.get("http://www.example.com:81/")
            return "done"

        assert run(sim, scenario()) == "done"

    def test_relative_url_rejected(self):
        sim, _network, _server_host, client_host = build()
        client = HttpClient(client_host)
        with pytest.raises(Exception):
            list(client.get("/relative"))

    def test_malformed_request_gets_400(self):
        sim, _network, server_host, client_host = build()
        HttpServer(server_host, 80, echo_handler).start()

        def scenario():
            conn = yield client_host.connect("www.example.com", 80)
            yield conn.send(b"THIS IS NOT HTTP\r\n\r\n")
            data = yield conn.recv()
            return data

        data = run(sim, scenario())
        assert data.startswith(b"HTTP/1.1 400")

    def test_server_stop_refuses_new_connections(self):
        sim, _network, server_host, client_host = build()
        server = HttpServer(server_host, 80, echo_handler).start()
        client = HttpClient(client_host)

        def scenario():
            yield from client.get("http://www.example.com/")
            server.stop()
            client.close()
            with pytest.raises(RequestFailed):
                yield from client.get("http://www.example.com/")
            return "done"

        assert run(sim, scenario()) == "done"


class TestCookies:
    def test_set_cookie_stored_and_replayed(self):
        sim, _network, server_host, client_host = build()
        seen = []

        def handler(request, client_name):
            seen.append(request.headers.get("Cookie"))
            headers = Headers([("Set-Cookie", "session=abc123; Path=/")])
            return HttpResponse(200, headers)

        HttpServer(server_host, 80, handler).start()
        jar = CookieJar()
        client = HttpClient(client_host, cookie_jar=jar)

        def scenario():
            yield from client.get("http://www.example.com/login")
            yield from client.get("http://www.example.com/account")

        run(sim, scenario())
        assert seen == [None, "session=abc123"]
        assert jar.get("www.example.com", "session") == "abc123"

    def test_cookies_not_sent_cross_host(self):
        jar = CookieJar()
        jar.set("a.com", "secret", "1")
        assert jar.cookie_header("b.com", "/") is None

    def test_path_scoping(self):
        jar = CookieJar()
        jar.set("a.com", "scoped", "1", path="/shop")
        assert jar.cookie_header("a.com", "/shop/cart") == "scoped=1"
        assert jar.cookie_header("a.com", "/other") is None
