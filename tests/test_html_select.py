"""Tests for the CSS selector engine."""

import pytest

from repro.html import parse_document
from repro.html.select import SelectorError, matches, select, select_one

DOC = parse_document(
    """
<html><head><title>T</title></head>
<body>
  <div id="main" class="wide dark">
    <form id="f1" class="search">
      <input type="text" name="q" value="">
      <input type="submit" name="go">
    </form>
    <ul class="results">
      <li class="result first"><a href="/item/1" data-kind="laptop">one</a></li>
      <li class="result"><a href="/item/2" data-kind="camera">two</a></li>
      <li class="result"><a href="http://x.com/3" data-kind="laptop">three</a></li>
    </ul>
  </div>
  <div class="sidebar"><a href="/promo">promo</a></div>
</body></html>
"""
)


class TestSimpleSelectors:
    def test_by_tag(self):
        assert len(select(DOC, "li")) == 3
        assert len(select(DOC, "form")) == 1

    def test_by_id(self):
        assert select_one(DOC, "#main").get_attribute("class") == "wide dark"
        assert select_one(DOC, "#absent") is None

    def test_by_class(self):
        assert len(select(DOC, ".result")) == 3
        assert len(select(DOC, ".first")) == 1

    def test_multiple_classes(self):
        assert select_one(DOC, ".result.first").text_content == "one"
        assert select(DOC, ".result.absent") == []

    def test_compound_tag_id_class(self):
        assert select_one(DOC, "form.search#f1") is not None
        assert select_one(DOC, "div.search#f1") is None

    def test_universal(self):
        assert len(select(DOC, "*")) == len(list(DOC.descendant_elements()))

    def test_tag_case_insensitive(self):
        assert len(select(DOC, "LI")) == 3


class TestAttributeSelectors:
    def test_presence(self):
        assert len(select(DOC, "[data-kind]")) == 3
        assert len(select(DOC, "input[name]")) == 2

    def test_equality(self):
        assert select_one(DOC, "input[name=q]").get_attribute("type") == "text"
        assert len(select(DOC, "[data-kind=laptop]")) == 2

    def test_quoted_value(self):
        assert select_one(DOC, '[data-kind="camera"]').text_content == "two"

    def test_prefix_suffix_contains(self):
        assert len(select(DOC, "a[href^=http]")) == 1
        assert len(select(DOC, "a[href$=promo]")) == 1
        assert len(select(DOC, "a[href*=item]")) == 2


class TestCombinators:
    def test_descendant(self):
        assert len(select(DOC, "#main a")) == 3
        assert len(select(DOC, ".sidebar a")) == 1

    def test_child(self):
        assert len(select(DOC, "ul > li")) == 3
        assert select(DOC, "ul > a") == []  # anchors are grandchildren

    def test_deep_chain(self):
        assert select_one(DOC, "#main ul.results > li.first a").text_content == "one"

    def test_comma_list(self):
        found = select(DOC, "form, .sidebar a")
        assert {el.tag for el in found} == {"form", "a"}


class TestMatches:
    def test_matches_true_false(self):
        anchor = select_one(DOC, "a[href='/item/1']")
        assert matches(anchor, "a")
        assert matches(anchor, ".result a, form")
        assert not matches(anchor, "form")

    def test_matches_non_element(self):
        from repro.html import Text

        assert not matches(Text("x"), "a")


class TestErrors:
    def test_empty_selector(self):
        with pytest.raises(SelectorError):
            select(DOC, "   ")

    def test_empty_id(self):
        with pytest.raises(SelectorError):
            select(DOC, "#")

    def test_empty_class(self):
        with pytest.raises(SelectorError):
            select(DOC, "div.")

    def test_unterminated_attribute(self):
        with pytest.raises(SelectorError):
            select(DOC, "a[href")

    def test_dangling_combinator(self):
        with pytest.raises(SelectorError):
            select(DOC, "ul >")
        with pytest.raises(SelectorError):
            select(DOC, "> li")
        with pytest.raises(SelectorError):
            select(DOC, "ul > > li")
