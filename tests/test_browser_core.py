"""Integration tests for the simulated browser against origin servers."""

import pytest

from repro.browser import (
    Browser,
    BrowserExtension,
    NavigationError,
    ScriptError,
    TOPIC_DOCUMENT_CHANGED,
    TOPIC_DOCUMENT_LOADED,
    TOPIC_OBJECT_DOWNLOADED,
)
from repro.browser.script import parse_call_expression
from repro.http import Headers, HttpResponse, html_response
from repro.net import LAN_PROFILE, Host, Network, parse_url
from repro.sim import Simulator
from repro.webserver import OriginServer, StaticSite


def build_world():
    sim = Simulator()
    network = Network(sim)
    client_host = Host(network, "user-pc", LAN_PROFILE, segment="campus")
    return sim, network, client_host


def run(sim, generator):
    return sim.run_until_complete(sim.process(generator))


def simple_site(network, host="site.com"):
    site = StaticSite(host)
    site.add_page(
        "/",
        "<html><head><title>Site</title>"
        '<link rel="stylesheet" href="/main.css"></head>'
        '<body><img src="/logo.png"><img src="images/banner.png">'
        '<a id="next" href="/page2.html">next</a></body></html>',
    )
    site.add_page("/page2.html", "<html><head><title>Two</title></head><body>p2</body></html>")
    site.add("/main.css", "text/css", b"body{}" * 100)
    site.add("/logo.png", "image/png", b"\x89PNG" + b"0" * 5000)
    site.add("/images/banner.png", "image/png", b"\x89PNG" + b"1" * 9000)
    return OriginServer(network, host, site.handle)


class TestNavigation:
    def test_navigate_loads_document_and_objects(self):
        sim, network, client_host = build_world()
        simple_site(network)
        browser = Browser(client_host)

        def scenario():
            page = yield from browser.navigate("http://site.com/")
            return page

        page = run(sim, scenario())
        assert page.document.title == "Site"
        assert len(page.objects) == 3
        assert page.html_load_time > 0
        assert browser.address_bar == "http://site.com/"
        assert browser.history == ["http://site.com/"]

    def test_relative_urls_resolved_for_objects(self):
        sim, network, client_host = build_world()
        simple_site(network)
        browser = Browser(client_host)

        def scenario():
            return (yield from browser.navigate("http://site.com/"))

        page = run(sim, scenario())
        urls = {obj.url for obj in page.objects}
        assert "http://site.com/images/banner.png" in urls

    def test_objects_cached_on_first_load(self):
        sim, network, client_host = build_world()
        simple_site(network)
        browser = Browser(client_host)

        def scenario():
            yield from browser.navigate("http://site.com/")

        run(sim, scenario())
        assert "http://site.com/logo.png" in browser.cache
        assert "http://site.com/main.css" in browser.cache

    def test_second_visit_hits_cache(self):
        sim, network, client_host = build_world()
        simple_site(network)
        browser = Browser(client_host)

        def scenario():
            yield from browser.navigate("http://site.com/")
            page = yield from browser.navigate("http://site.com/")
            return page

        page = run(sim, scenario())
        assert all(obj.from_cache for obj in page.objects)
        assert page.objects_load_time == 0.0

    def test_missing_object_does_not_fail_page(self):
        sim, network, client_host = build_world()
        site = StaticSite("s.com")
        site.add_page("/", '<html><body><img src="/ghost.png"></body></html>')
        OriginServer(network, "s.com", site.handle)
        browser = Browser(client_host)

        def scenario():
            return (yield from browser.navigate("http://s.com/"))

        page = run(sim, scenario())
        assert page.objects == []

    def test_navigate_404_raises(self):
        sim, network, client_host = build_world()
        simple_site(network)
        browser = Browser(client_host)

        def scenario():
            with pytest.raises(NavigationError):
                yield from browser.navigate("http://site.com/absent.html")
            return "done"

        assert run(sim, scenario()) == "done"

    def test_navigate_unknown_host_raises(self):
        sim, _network, client_host = build_world()
        browser = Browser(client_host)

        def scenario():
            with pytest.raises(NavigationError):
                yield from browser.navigate("http://ghost.example/")
            return "done"

        assert run(sim, scenario()) == "done"

    def test_redirect_followed(self):
        sim, network, client_host = build_world()

        def handler(request, client):
            if request.path == "/old":
                return HttpResponse(302, Headers([("Location", "/new")]))
            return html_response("<html><head><title>New</title></head><body></body></html>")

        OriginServer(network, "r.com", handler)
        browser = Browser(client_host)

        def scenario():
            return (yield from browser.navigate("http://r.com/old"))

        page = run(sim, scenario())
        assert page.document.title == "New"
        assert str(page.url) == "http://r.com/new"

    def test_relative_navigation_uses_current_page(self):
        sim, network, client_host = build_world()
        simple_site(network)
        browser = Browser(client_host)

        def scenario():
            yield from browser.navigate("http://site.com/")
            page = yield from browser.navigate("page2.html")
            return page

        page = run(sim, scenario())
        assert page.document.title == "Two"

    def test_relative_navigation_without_page_rejected(self):
        sim, _network, client_host = build_world()
        browser = Browser(client_host)
        with pytest.raises(NavigationError):
            list(browser.navigate("page2.html"))

    def test_document_loaded_notification(self):
        sim, network, client_host = build_world()
        simple_site(network)
        browser = Browser(client_host)
        loads = []
        browser.observers.add_observer(TOPIC_DOCUMENT_LOADED, lambda t, p: loads.append(p))
        objects = []
        browser.observers.add_observer(TOPIC_OBJECT_DOWNLOADED, lambda t, p: objects.append(p))

        def scenario():
            yield from browser.navigate("http://site.com/")

        run(sim, scenario())
        assert len(loads) == 1
        assert len(objects) == 3


class TestObjectDiscovery:
    def test_discovery_covers_tags(self):
        from repro.html import parse_document

        doc = parse_document(
            "<html><head>"
            '<link rel="stylesheet" href="/a.css">'
            '<link rel="alternate" href="/feed.xml">'
            '<script src="/b.js"></script></head>'
            '<body background="/bg.png">'
            '<img src="/i.png"><iframe src="/f.html"></iframe>'
            '<input type="image" src="/btn.png"><input type="text" src="/ignored.png">'
            "</body></html>"
        )
        urls = Browser.discover_object_urls(doc, parse_url("http://x.com/dir/page.html"))
        assert "http://x.com/a.css" in urls
        assert "http://x.com/feed.xml" not in urls
        assert "http://x.com/b.js" in urls
        assert "http://x.com/bg.png" in urls
        assert "http://x.com/i.png" in urls
        assert "http://x.com/f.html" in urls
        assert "http://x.com/btn.png" in urls
        assert "http://x.com/ignored.png" not in urls

    def test_duplicates_removed(self):
        from repro.html import parse_document

        doc = parse_document(
            '<html><body><img src="/same.png"><img src="/same.png"></body></html>'
        )
        urls = Browser.discover_object_urls(doc, parse_url("http://x.com/"))
        assert urls == ["http://x.com/same.png"]


class TestEventsAndForms:
    def make_browser_with_page(self, body_html):
        sim, network, client_host = build_world()
        site = StaticSite("f.com")
        site.add_page("/", "<html><head></head><body>%s</body></html>" % body_html)
        site.add_page("/done", "<html><head><title>Done</title></head><body>ok</body></html>")

        def handler(request, client):
            if request.path == "/submit":
                fields = (
                    request.form_params() if request.method == "POST" else request.query_params()
                )
                rows = "".join("<li>%s=%s</li>" % (k, fields[k]) for k in sorted(fields))
                return html_response(
                    "<html><head><title>Submitted</title></head>"
                    "<body><ul id='echo'>%s</ul></body></html>" % rows
                )
            return site.handle(request, client)

        OriginServer(network, "f.com", handler)
        browser = Browser(client_host)

        def scenario():
            return (yield from browser.navigate("http://f.com/"))

        run(sim, scenario())
        return sim, browser

    def test_dispatch_event_runs_attribute_handler(self):
        sim, browser = self.make_browser_with_page(
            '<button id="b" onclick="doThing(this)">go</button>'
        )
        called = []
        browser.page.scripts.register("doThing", lambda el, ev: called.append(el.tag))
        button = browser.page.document.get_element_by_id("b")
        browser.dispatch_event(button, "click")
        assert called == ["button"]

    def test_dispatch_without_handler_returns_none(self):
        sim, browser = self.make_browser_with_page('<button id="b">go</button>')
        button = browser.page.document.get_element_by_id("b")
        assert browser.dispatch_event(button, "click") is None

    def test_javascript_disabled_skips_handlers(self):
        sim, browser = self.make_browser_with_page(
            '<button id="b" onclick="boom(this)">go</button>'
        )
        browser.javascript_enabled = False
        button = browser.page.document.get_element_by_id("b")
        assert browser.dispatch_event(button, "click") is None

    def test_unregistered_handler_raises(self):
        sim, browser = self.make_browser_with_page(
            '<button id="b" onclick="missing(this)">go</button>'
        )
        button = browser.page.document.get_element_by_id("b")
        with pytest.raises(ScriptError):
            browser.dispatch_event(button, "click")

    def test_click_link_navigates(self):
        sim, browser = self.make_browser_with_page('<a id="l" href="/done">go</a>')
        anchor = browser.page.document.get_element_by_id("l")

        def scenario():
            return (yield from browser.click_link(anchor))

        page = run(sim, scenario())
        assert page.document.title == "Done"

    def test_click_cancelled_by_handler(self):
        sim, browser = self.make_browser_with_page(
            '<a id="l" href="/done" onclick="return intercept(this)">go</a>'
        )
        browser.page.scripts.register("intercept", lambda el, ev: False)
        anchor = browser.page.document.get_element_by_id("l")

        def scenario():
            return (yield from browser.click_link(anchor))

        page = run(sim, scenario())
        assert str(page.url) == "http://f.com/"

    def test_form_get_submission(self):
        sim, browser = self.make_browser_with_page(
            "<form id='f' action='/submit' method='GET'>"
            "<input type='text' name='q' value=''></form>"
        )
        form = browser.page.document.get_element_by_id("f")

        def scenario():
            return (yield from browser.submit_form(form, {"q": "laptop"}))

        page = run(sim, scenario())
        assert "q=laptop" in page.document.text_content

    def test_form_post_submission(self):
        sim, browser = self.make_browser_with_page(
            "<form id='f' action='/submit' method='POST'>"
            "<input type='text' name='name' value=''>"
            "<input type='hidden' name='token' value='t1'></form>"
        )
        form = browser.page.document.get_element_by_id("f")

        def scenario():
            return (yield from browser.submit_form(form, {"name": "Alice"}))

        page = run(sim, scenario())
        text = page.document.text_content
        assert "name=Alice" in text
        assert "token=t1" in text

    def test_form_submission_intercepted(self):
        sim, browser = self.make_browser_with_page(
            "<form id='f' action='/submit' method='POST' onsubmit='return hook(this)'>"
            "<input type='text' name='x' value='1'></form>"
        )
        captured = []

        def hook(element, event):
            captured.append(Browser.collect_form_fields(element))
            return False

        browser.page.scripts.register("hook", hook)
        form = browser.page.document.get_element_by_id("f")

        def scenario():
            return (yield from browser.submit_form(form))

        page = run(sim, scenario())
        assert str(page.url) == "http://f.com/"  # stayed put
        assert captured == [{"x": "1"}]

    def test_collect_form_fields_controls(self):
        from repro.html import parse_fragment

        (form,) = parse_fragment(
            "<form>"
            "<input type='text' name='t' value='v'>"
            "<input type='checkbox' name='c1' value='on' checked>"
            "<input type='checkbox' name='c2' value='on'>"
            "<input type='submit' name='go' value='Go'>"
            "<textarea name='ta'>body text</textarea>"
            "<select name='s'><option value='a'>A</option>"
            "<option value='b' selected>B</option></select>"
            "</form>"
        )
        fields = Browser.collect_form_fields(form)
        assert fields == {"t": "v", "c1": "on", "ta": "body text", "s": "b"}

    def test_fill_field_textarea(self):
        sim, browser = self.make_browser_with_page(
            "<form id='f'><textarea name='ta'></textarea></form>"
        )
        form = browser.page.document.get_element_by_id("f")
        textarea = form.get_elements_by_tag_name("textarea")[0]
        browser.fill_field(textarea, "typed text")
        assert textarea.text_content == "typed text"


class TestMutation:
    def test_mutate_document_bumps_version_and_notifies(self):
        sim, browser = TestEventsAndForms().make_browser_with_page("<div id='d'>old</div>")
        changes = []
        browser.observers.add_observer(TOPIC_DOCUMENT_CHANGED, lambda t, p: changes.append(p))

        def mutate(document):
            document.get_element_by_id("d").inner_html = "new"

        browser.mutate_document(mutate)
        assert browser.page.version == 1
        assert len(changes) == 1
        assert browser.page.document.get_element_by_id("d").text_content == "new"

    def test_mutate_without_page_rejected(self):
        sim, _network, client_host = build_world()
        browser = Browser(client_host)
        with pytest.raises(NavigationError):
            browser.mutate_document(lambda d: None)


class TestExtensions:
    def test_install_and_uninstall(self):
        sim, _network, client_host = build_world()
        browser = Browser(client_host)
        events = []

        class Probe(BrowserExtension):
            def on_install(self):
                events.append("install")

            def on_uninstall(self):
                events.append("uninstall")

        probe = Probe().install(browser)
        assert browser.extensions == [probe]
        probe.uninstall()
        assert browser.extensions == []
        assert events == ["install", "uninstall"]

    def test_double_install_rejected(self):
        sim, _network, client_host = build_world()
        browser = Browser(client_host)
        ext = BrowserExtension().install(browser)
        with pytest.raises(RuntimeError):
            ext.install(browser)

    def test_close_uninstalls_extensions(self):
        sim, _network, client_host = build_world()
        browser = Browser(client_host)
        ext = BrowserExtension().install(browser)
        browser.close()
        assert ext.browser is None


class TestCallExpressionParsing:
    def test_plain_call(self):
        assert parse_call_expression("fn(this)") == "fn"

    def test_return_prefix_and_semicolon(self):
        assert parse_call_expression("return rcbSubmit(this);") == "rcbSubmit"

    def test_bad_expressions(self):
        for bad in ("", "noparens", "(x)", "a b(x)"):
            with pytest.raises(ScriptError):
                parse_call_expression(bad)
