"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.webserver import TABLE1_SITES


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["teleport"])

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "fig6"])
        assert args.target == "fig6"
        assert args.repetitions == 3
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_repetitions_flag(self):
        args = build_parser().parse_args(["experiment", "table1", "--repetitions", "1"])
        assert args.repetitions == 1

    def test_trace_defaults_and_flags(self):
        args = build_parser().parse_args(["trace"])
        assert args.participants == 6
        assert args.branching == 2
        assert args.jsonl is None and args.chrome is None
        args = build_parser().parse_args(
            ["trace", "--participants", "3", "--branching", "1", "--jsonl", "s.jsonl"]
        )
        assert (args.participants, args.branching, args.jsonl) == (3, 1, "s.jsonl")

    def test_metrics_takes_no_arguments(self):
        assert build_parser().parse_args(["metrics"]).command == "metrics"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["metrics", "--bogus"])


class TestCommands:
    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "RCB-Agent" in out
        assert "Synchronized" in out

    def test_sites_lists_all_twenty(self, capsys):
        assert main(["sites"]) == 0
        out = capsys.readouterr().out
        for spec in TABLE1_SITES:
            assert spec.host in out

    def test_experiment_fig6_single_rep(self, capsys):
        assert main(["experiment", "fig6", "--repetitions", "1"]) == 0
        out = capsys.readouterr().out
        assert "M2 < M1 on 20 of 20 sites" in out

    def test_experiment_table4(self, capsys):
        assert main(["experiment", "table4"]) == 0
        out = capsys.readouterr().out
        assert "Q8" in out and "Agree" in out

    def test_experiment_table2(self, capsys):
        assert main(["experiment", "table2"]) == 0
        out = capsys.readouterr().out
        assert "completed: 20 / 20" in out

    def test_scenario_maps(self, capsys):
        assert main(["scenario", "maps"]) == 0
        out = capsys.readouterr().out
        assert "T1-B" in out
        assert "FAIL" not in out

    def test_scenario_shop(self, capsys):
        assert main(["scenario", "shop"]) == 0
        out = capsys.readouterr().out
        assert "T10-B" in out
        assert "FAIL" not in out

    def test_trace_prints_connected_span_tree(self, capsys):
        assert main(["trace", "--participants", "4", "--branching", "2"]) == 0
        out = capsys.readouterr().out
        assert "1 traces" in out
        assert "host.generate" in out
        assert "relay.apply" in out
        assert "Per-stage sim-time durations" in out

    def test_trace_exports_both_formats(self, tmp_path, capsys):
        import json

        jsonl = tmp_path / "spans.jsonl"
        chrome = tmp_path / "events.json"
        assert (
            main(
                [
                    "trace",
                    "--participants",
                    "2",
                    "--jsonl",
                    str(jsonl),
                    "--chrome",
                    str(chrome),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "wrote" in out and "chrome://tracing" in out
        rows = [json.loads(line) for line in jsonl.read_text().splitlines()]
        assert any(row["name"] == "host.generate" for row in rows)
        document = json.loads(chrome.read_text())
        assert any(e["ph"] == "X" for e in document["traceEvents"])

    def test_metrics_dumps_the_registry(self, capsys):
        assert main(["metrics"]) == 0
        out = capsys.readouterr().out
        assert "Session metrics" in out
        assert "agent_polls" in out
        assert "snippet_sync_seconds" in out
        assert "p95=" in out
