"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.webserver import TABLE1_SITES


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["teleport"])

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "fig6"])
        assert args.target == "fig6"
        assert args.repetitions == 3
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_repetitions_flag(self):
        args = build_parser().parse_args(["experiment", "table1", "--repetitions", "1"])
        assert args.repetitions == 1

    def test_trace_defaults_and_flags(self):
        args = build_parser().parse_args(["trace"])
        assert args.participants == 6
        assert args.branching == 2
        assert args.jsonl is None and args.chrome is None
        args = build_parser().parse_args(
            ["trace", "--participants", "3", "--branching", "1", "--jsonl", "s.jsonl"]
        )
        assert (args.participants, args.branching, args.jsonl) == (3, 1, "s.jsonl")

    def test_metrics_takes_no_arguments(self):
        assert build_parser().parse_args(["metrics"]).command == "metrics"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["metrics", "--bogus"])


class TestCommands:
    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "RCB-Agent" in out
        assert "Synchronized" in out

    def test_sites_lists_all_twenty(self, capsys):
        assert main(["sites"]) == 0
        out = capsys.readouterr().out
        for spec in TABLE1_SITES:
            assert spec.host in out

    def test_experiment_fig6_single_rep(self, capsys):
        assert main(["experiment", "fig6", "--repetitions", "1"]) == 0
        out = capsys.readouterr().out
        assert "M2 < M1 on 20 of 20 sites" in out

    def test_experiment_table4(self, capsys):
        assert main(["experiment", "table4"]) == 0
        out = capsys.readouterr().out
        assert "Q8" in out and "Agree" in out

    def test_experiment_table2(self, capsys):
        assert main(["experiment", "table2"]) == 0
        out = capsys.readouterr().out
        assert "completed: 20 / 20" in out

    def test_scenario_maps(self, capsys):
        assert main(["scenario", "maps"]) == 0
        out = capsys.readouterr().out
        assert "T1-B" in out
        assert "FAIL" not in out

    def test_scenario_shop(self, capsys):
        assert main(["scenario", "shop"]) == 0
        out = capsys.readouterr().out
        assert "T10-B" in out
        assert "FAIL" not in out

    def test_trace_prints_connected_span_tree(self, capsys):
        assert main(["trace", "--participants", "4", "--branching", "2"]) == 0
        out = capsys.readouterr().out
        assert "1 traces" in out
        assert "host.generate" in out
        assert "relay.apply" in out
        assert "Per-stage sim-time durations" in out

    def test_trace_exports_both_formats(self, tmp_path, capsys):
        import json

        jsonl = tmp_path / "spans.jsonl"
        chrome = tmp_path / "events.json"
        assert (
            main(
                [
                    "trace",
                    "--participants",
                    "2",
                    "--jsonl",
                    str(jsonl),
                    "--chrome",
                    str(chrome),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "wrote" in out and "chrome://tracing" in out
        rows = [json.loads(line) for line in jsonl.read_text().splitlines()]
        assert any(row["name"] == "host.generate" for row in rows)
        document = json.loads(chrome.read_text())
        assert any(e["ph"] == "X" for e in document["traceEvents"])

    def test_metrics_dumps_the_registry(self, capsys):
        assert main(["metrics"]) == 0
        out = capsys.readouterr().out
        assert "Session metrics" in out
        assert "agent_polls" in out
        assert "snippet_sync_seconds" in out
        assert "p95=" in out


class TestHealthParser:
    def test_health_defaults(self):
        args = build_parser().parse_args(["health"])
        assert (args.participants, args.branching) == (6, 2)
        assert args.duration == 20.0
        assert not args.fail_relay and not args.check
        assert args.dump is None and args.dump_on_breach is None

    def test_logs_defaults_and_filters(self):
        args = build_parser().parse_args(["logs"])
        assert args.limit == 40 and not args.json
        args = build_parser().parse_args(
            ["logs", "--type", "poll.served", "--node", "guest-1", "--json"]
        )
        assert args.event_type == "poll.served"
        assert args.node == "guest-1"
        assert args.json


class TestHealthCommand:
    def test_healthy_run_reports_ok_and_exits_zero(self, capsys):
        assert main(["health", "--duration", "6", "--check"]) == 0
        out = capsys.readouterr().out
        assert "staleness_p95" in out
        assert "worst level during run: OK" in out
        assert "BREACH" not in out.replace("BREACH affects", "")

    def test_relay_death_breaches_and_check_exits_nonzero(self, capsys):
        assert main(["health", "--fail-relay", "--check", "--duration", "15"]) == 1
        out = capsys.readouterr().out
        assert "injecting relay death" in out
        assert "BREACH affects:" in out
        assert "worst level during run: BREACH" in out

    def test_without_check_breach_still_exits_zero(self, capsys):
        assert main(["health", "--fail-relay", "--duration", "15"]) == 0
        assert "worst level during run: BREACH" in capsys.readouterr().out

    def test_dump_writes_black_box(self, tmp_path, capsys):
        import json

        path = tmp_path / "box.json"
        assert main(["health", "--duration", "4", "--dump", str(path)]) == 0
        assert "wrote black box" in capsys.readouterr().out
        box = json.loads(path.read_text())
        assert box["reason"] == "on-demand"
        assert box["events"]
        assert any(row["type"] == "poll.served" for row in box["events"])
        assert box["trace_ids"]

    def test_dump_on_breach_skipped_when_healthy(self, tmp_path, capsys):
        path = tmp_path / "box.json"
        assert (
            main(["health", "--duration", "4", "--dump-on-breach", str(path)]) == 0
        )
        assert not path.exists()

    def test_dump_on_breach_written_on_breach(self, tmp_path, capsys):
        import json

        path = tmp_path / "box.json"
        assert (
            main(
                [
                    "health",
                    "--fail-relay",
                    "--duration",
                    "15",
                    "--dump-on-breach",
                    str(path),
                ]
            )
            == 0
        )
        assert "wrote breach black box" in capsys.readouterr().out
        box = json.loads(path.read_text())
        assert any(row["type"] == "relay.death" for row in box["events"])


class TestLogsCommand:
    def test_tail_prints_typed_events(self, capsys):
        assert main(["logs", "--duration", "4"]) == 0
        out = capsys.readouterr().out
        assert "type" in out and "node" in out
        assert "poll.served" in out

    def test_type_filter_with_json_lines(self, capsys):
        import json

        assert main(["logs", "--duration", "4", "--type", "member.join", "--json"]) == 0
        rows = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
            if line.strip()
        ]
        assert rows
        assert all(row["type"] == "member.join" for row in rows)

    def test_no_matches_exits_nonzero(self, capsys):
        assert main(["logs", "--duration", "4", "--type", "hmac.reject"]) == 1
        assert "no events matched" in capsys.readouterr().err


class TestEmptyRunExits:
    def test_trace_with_no_spans_exits_nonzero(self, capsys):
        assert main(["trace", "--participants", "0"]) == 1
        assert "produced no spans" in capsys.readouterr().err

    def test_metrics_with_empty_registry_exits_nonzero(self, monkeypatch, capsys):
        from repro.obs import MetricsRegistry

        monkeypatch.setattr(MetricsRegistry, "collect", lambda self: [])
        assert main(["metrics"]) == 1
        assert "produced no metrics" in capsys.readouterr().err


class TestObservabilityParser:
    def test_trace_flame_graph_flags(self):
        args = build_parser().parse_args(
            ["trace", "--collapsed", "s.folded", "--speedscope", "p.json"]
        )
        assert args.collapsed == "s.folded"
        assert args.speedscope == "p.json"

    def test_metrics_and_health_format_flag(self):
        assert build_parser().parse_args(["metrics"]).format == "text"
        assert (
            build_parser().parse_args(["metrics", "--format", "json"]).format == "json"
        )
        assert build_parser().parse_args(["health"]).format == "text"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["metrics", "--format", "yaml"])

    def test_top_defaults(self):
        args = build_parser().parse_args(["top"])
        assert args.command == "top"
        assert (args.participants, args.branching) == (6, 2)
        assert args.speedscope is None


class TestJsonOutput:
    def test_metrics_json_round_trips(self, capsys):
        import json

        assert main(["metrics", "--format", "json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert isinstance(rows, list) and rows
        names = {row["name"] for row in rows}
        assert "agent_polls" in names
        histogram = next(r for r in rows if r["type"] == "histogram")
        assert {"count", "p50", "p95", "p99"} <= set(histogram)

    def test_health_json_round_trips(self, capsys):
        import json

        assert main(["health", "--duration", "4", "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["worst_level"] == "OK"
        rules = {verdict["rule"] for verdict in document["verdicts"]}
        assert "staleness_p95" in rules
        # The perf-budget rules ride along when the feeds are attached.
        assert "serve_self_p95" in rules
        assert "member_uplink_bytes" in rules


class TestTopCommand:
    def test_top_prints_fleet_profile_and_attribution(self, capsys):
        assert main(["top", "--participants", "4", "--duration", "6"]) == 0
        out = capsys.readouterr().out
        assert "Fleet at t=" in out
        assert "relays" in out and "transport" in out
        assert "Profile (trailing" in out
        assert "host.serve" in out
        assert "Wire-byte attribution" in out
        assert "TOTAL" in out
        assert "Session health" in out

    def test_top_exports_speedscope(self, tmp_path, capsys):
        import json

        path = tmp_path / "top.speedscope.json"
        assert main(["top", "--duration", "4", "--speedscope", str(path)]) == 0
        assert "speedscope" in capsys.readouterr().out
        document = json.loads(path.read_text())
        assert document["$schema"].endswith("file-format-schema.json")
        assert document["profiles"]


class TestTraceFlameGraphExports:
    def test_trace_writes_collapsed_and_speedscope(self, tmp_path, capsys):
        import json

        folded = tmp_path / "stacks.folded"
        speedscope = tmp_path / "trace.speedscope.json"
        assert (
            main(
                [
                    "trace",
                    "--participants",
                    "2",
                    "--collapsed",
                    str(folded),
                    "--speedscope",
                    str(speedscope),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "collapsed stacks" in out
        assert "speedscope.app" in out
        lines = folded.read_text().splitlines()
        assert lines
        for line in lines:
            frames, value = line.rsplit(" ", 1)
            assert frames and int(value) >= 0
        document = json.loads(speedscope.read_text())
        assert any(frame["name"] == "host.serve" for frame in document["shared"]["frames"])


class TestFleetCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["fleet"])
        assert args.command == "fleet"
        assert args.byte_cap == 2048
        assert args.json is None
        assert args.participants == 6

    def test_fleet_prints_rollups_and_overhead(self, capsys):
        assert main(["fleet", "--duration", "5", "--participants", "3"]) == 0
        out = capsys.readouterr().out
        assert "Fleet telemetry at t=" in out
        assert "members reporting" in out
        assert "stale p95" in out
        assert "telemetry overhead:" in out
        assert "fleet" in out

    def test_fleet_json_export_round_trips(self, tmp_path, capsys):
        import json

        path = tmp_path / "fleet.json"
        assert (
            main(
                [
                    "fleet",
                    "--duration",
                    "5",
                    "--participants",
                    "3",
                    "--json",
                    str(path),
                ]
            )
            == 0
        )
        assert "wrote fleet view" in capsys.readouterr().out
        document = json.loads(path.read_text())
        assert document["members_reporting"] >= 3
        assert document["fleet"]["counters"]["polls"] > 0
        assert "telemetry_overhead_ratio" in document

    def test_fleet_survives_relay_death(self, capsys):
        assert main(["fleet", "--duration", "10", "--fail-relay"]) == 0
        out = capsys.readouterr().out
        assert "injecting relay death" in out
        assert "members reporting" in out


class TestZeroMemberRuns:
    def test_health_with_zero_participants_exits_nonzero(self, capsys):
        assert main(["health", "--participants", "0", "--duration", "3"]) == 1
        captured = capsys.readouterr()
        assert "produced no members" in captured.err
        assert "repro health:" in captured.err

    def test_fleet_with_zero_participants_exits_nonzero(self, capsys):
        assert main(["fleet", "--participants", "0", "--duration", "3"]) == 1
        captured = capsys.readouterr()
        assert "produced no members" in captured.err
        assert "repro fleet:" in captured.err


class TestShardsCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["shards"])
        assert args.command == "shards"
        assert args.participants == 24
        assert args.shards == 4
        assert args.duration == 10.0
        assert args.fail_shard is False

    def test_shards_prints_pool_table(self, capsys):
        assert main(["shards", "--participants", "8", "--duration", "6"]) == 0
        out = capsys.readouterr().out
        assert "Shard pool at t=" in out
        assert "4 shards, 8 members" in out
        assert "shard-0" in out
        assert "events: 0 shard.promote, 0 shard.migrate" in out

    def test_shards_single_shard_serves_from_root(self, capsys):
        assert (
            main(["shards", "--participants", "4", "--shards", "1", "--duration", "4"])
            == 0
        )
        out = capsys.readouterr().out
        assert "1 shards, 4 members" in out
        assert "root" in out

    def test_shards_fail_shard_promotes_and_recovers(self, capsys):
        assert (
            main(
                [
                    "shards",
                    "--participants",
                    "8",
                    "--duration",
                    "10",
                    "--fail-shard",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "injecting shard host death" in out
        assert "3 shards, 8 members" in out
        assert "1 shard.promote" in out

    def test_shards_with_zero_participants_exits_nonzero(self, capsys):
        assert main(["shards", "--participants", "0", "--duration", "3"]) == 1
        captured = capsys.readouterr()
        assert "repro shards:" in captured.err
        assert "produced no members" in captured.err
