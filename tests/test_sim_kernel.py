"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Interrupt,
    SimulationError,
    Simulator,
)


def test_timeout_advances_clock():
    sim = Simulator()

    def proc():
        yield sim.timeout(2.5)
        return sim.now

    result = sim.run_until_complete(sim.process(proc()))
    assert result == 2.5
    assert sim.now == 2.5


def test_zero_delay_timeout_fires_at_current_time():
    sim = Simulator()

    def proc():
        yield sim.timeout(0)
        return sim.now

    assert sim.run_until_complete(sim.process(proc())) == 0.0


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1)


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []

    def waiter(delay, tag):
        yield sim.timeout(delay)
        fired.append(tag)

    sim.process(waiter(3, "c"))
    sim.process(waiter(1, "a"))
    sim.process(waiter(2, "b"))
    sim.run()
    assert fired == ["a", "b", "c"]


def test_fifo_order_among_equal_times():
    sim = Simulator()
    fired = []

    def waiter(tag):
        yield sim.timeout(1.0)
        fired.append(tag)

    for tag in "abcdef":
        sim.process(waiter(tag))
    sim.run()
    assert fired == list("abcdef")


def test_process_return_value_propagates():
    sim = Simulator()

    def child():
        yield sim.timeout(1)
        return 42

    def parent():
        value = yield sim.process(child())
        return value + 1

    assert sim.run_until_complete(sim.process(parent())) == 43


def test_event_succeed_wakes_waiter():
    sim = Simulator()
    gate = sim.event()
    log = []

    def waiter():
        value = yield gate
        log.append((sim.now, value))

    def trigger():
        yield sim.timeout(5)
        gate.succeed("opened")

    sim.process(waiter())
    sim.process(trigger())
    sim.run()
    assert log == [(5.0, "opened")]


def test_event_fail_raises_in_waiter():
    sim = Simulator()
    gate = sim.event()

    def waiter():
        try:
            yield gate
        except RuntimeError as exc:
            return "caught:%s" % exc
        return "not raised"

    def trigger():
        yield sim.timeout(1)
        gate.fail(RuntimeError("boom"))

    proc = sim.process(waiter())
    sim.process(trigger())
    assert sim.run_until_complete(proc) == "caught:boom"


def test_double_trigger_rejected():
    sim = Simulator()
    event = sim.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)
    with pytest.raises(SimulationError):
        event.fail(RuntimeError())


def test_waiting_on_already_processed_event():
    sim = Simulator()
    gate = sim.event()
    gate.succeed("early")
    sim.run()
    assert gate.processed

    def late_waiter():
        value = yield gate
        return value

    assert sim.run_until_complete(sim.process(late_waiter())) == "early"


def test_process_crash_propagates_from_run_until_complete():
    sim = Simulator()

    def crasher():
        yield sim.timeout(1)
        raise ValueError("dead")

    with pytest.raises(ValueError, match="dead"):
        sim.run_until_complete(sim.process(crasher()))


def test_unhandled_failure_raises_from_run():
    sim = Simulator()

    def crasher():
        yield sim.timeout(1)
        raise ValueError("unwatched")

    sim.process(crasher())
    with pytest.raises(ValueError, match="unwatched"):
        sim.run()


def test_watched_failure_is_defused():
    sim = Simulator()

    def crasher():
        yield sim.timeout(1)
        raise ValueError("watched")

    def watcher():
        try:
            yield sim.process(crasher())
        except ValueError:
            return "handled"

    assert sim.run_until_complete(sim.process(watcher())) == "handled"


def test_interrupt_delivers_cause():
    sim = Simulator()

    def sleeper():
        try:
            yield sim.timeout(100)
        except Interrupt as interrupt:
            return ("interrupted", interrupt.cause, sim.now)

    def interrupter(victim):
        yield sim.timeout(3)
        victim.interrupt("wake up")

    victim = sim.process(sleeper())
    sim.process(interrupter(victim))
    assert sim.run_until_complete(victim) == ("interrupted", "wake up", 3.0)


def test_interrupt_terminated_process_rejected():
    sim = Simulator()

    def quick():
        yield sim.timeout(1)

    proc = sim.process(quick())
    sim.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_yield_non_event_fails_process():
    sim = Simulator()

    def bad():
        yield 42

    proc = sim.process(bad())
    with pytest.raises(RuntimeError, match="non-event"):
        sim.run()
    assert proc.triggered
    assert not proc.ok
    assert isinstance(proc.value, RuntimeError)


def test_any_of_triggers_on_first():
    sim = Simulator()

    def proc():
        a = sim.timeout(5, "slow")
        b = sim.timeout(1, "fast")
        values = yield AnyOf(sim, [a, b])
        return (sim.now, list(values.values()))

    when, values = sim.run_until_complete(sim.process(proc()))
    assert when == 1.0
    assert values == ["fast"]


def test_all_of_waits_for_every_event():
    sim = Simulator()

    def proc():
        a = sim.timeout(5, "slow")
        b = sim.timeout(1, "fast")
        values = yield AllOf(sim, [a, b])
        return (sim.now, sorted(values.values()))

    when, values = sim.run_until_complete(sim.process(proc()))
    assert when == 5.0
    assert values == ["fast", "slow"]


def test_all_of_empty_list_triggers_immediately():
    sim = Simulator()

    def proc():
        result = yield AllOf(sim, [])
        return result

    assert sim.run_until_complete(sim.process(proc())) == {}


def test_run_until_limits_clock():
    sim = Simulator()
    fired = []

    def waiter():
        yield sim.timeout(10)
        fired.append(sim.now)

    sim.process(waiter())
    sim.run(until=5)
    assert sim.now == 5
    assert fired == []
    sim.run(until=15)
    assert fired == [10.0]
    assert sim.now == 15


def test_run_until_in_the_past_rejected():
    sim = Simulator()
    sim.run(until=10)
    with pytest.raises(ValueError):
        sim.run(until=5)


def test_deadlock_detected():
    sim = Simulator()

    def stuck():
        yield sim.event()  # never triggered

    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_until_complete(sim.process(stuck()))


def test_peek_reports_next_event_time():
    sim = Simulator()
    assert sim.peek() == float("inf")
    sim.timeout(7)
    assert sim.peek() == 7.0


def test_nested_process_chain():
    sim = Simulator()

    def level(n):
        if n == 0:
            yield sim.timeout(1)
            return 1
        inner = yield sim.process(level(n - 1))
        return inner + 1

    assert sim.run_until_complete(sim.process(level(10))) == 11
    assert sim.now == 1.0
