"""The flight recorder: triggers, rate limits, and black-box contents."""

import json

from repro.obs import (
    HMAC_REJECT,
    POLL_SERVED,
    RELAY_DEATH,
    RESYNC_FORCED,
    EventBus,
    FlightRecorder,
    MetricsRegistry,
    Tracer,
)


def build(events=None, **kwargs):
    bus = events if events is not None else EventBus()
    return bus, FlightRecorder(bus, **kwargs)


class TestTriggers:
    def test_relay_death_triggers_by_default(self):
        bus, recorder = build()
        bus.emit(POLL_SERVED, 1.0, node="agent")
        bus.emit(RELAY_DEATH, 2.0, node="relay-1", reason="injected")
        assert len(recorder.dumps) == 1
        box = recorder.dumps[0]
        assert box["reason"] == "event:%s" % RELAY_DEATH
        assert box["t"] == 2.0
        assert [row["type"] for row in box["events"]] == [POLL_SERVED, RELAY_DEATH]

    def test_custom_trigger_types(self):
        bus, recorder = build(trigger_types=(HMAC_REJECT,))
        bus.emit(RELAY_DEATH, 1.0, node="relay-1")
        assert recorder.dumps == []
        bus.emit(HMAC_REJECT, 2.0, node="agent")
        assert len(recorder.dumps) == 1

    def test_repeated_resync_storm_triggers_once(self):
        bus, recorder = build(resync_threshold=3, resync_window=10.0)
        bus.emit(RESYNC_FORCED, 1.0, node="alice")
        bus.emit(RESYNC_FORCED, 2.0, node="alice")
        assert recorder.dumps == []
        bus.emit(RESYNC_FORCED, 3.0, node="alice")
        assert [box["reason"] for box in recorder.dumps] == ["repeated-resync"]
        # The storm window was consumed; isolated follow-ups stay quiet.
        bus.emit(RESYNC_FORCED, 4.0, node="alice")
        assert len(recorder.dumps) == 1

    def test_resyncs_outside_window_do_not_storm(self):
        bus, recorder = build(resync_threshold=3, resync_window=5.0)
        for t in (0.0, 10.0, 20.0, 30.0):
            bus.emit(RESYNC_FORCED, t, node="alice")
        assert recorder.dumps == []

    def test_explicit_trigger_and_rate_limit(self):
        _bus, recorder = build(min_dump_interval=1.0)
        assert recorder.trigger("slo-breach:staleness@alice", t=5.0) is not None
        # Same reason inside the interval: suppressed.
        assert recorder.trigger("slo-breach:staleness@alice", t=5.5) is None
        # A different reason has its own limiter.
        assert recorder.trigger("slo-breach:staleness@carol", t=5.5) is not None
        # Same reason after the interval passes: allowed again.
        assert recorder.trigger("slo-breach:staleness@alice", t=6.5) is not None
        assert len(recorder.dumps) == 3

    def test_max_dumps_caps_retention(self):
        bus, recorder = build(max_dumps=2, min_dump_interval=0.0)
        for tick in range(5):
            bus.emit(RELAY_DEATH, float(tick), node="relay-%d" % tick)
        assert len(recorder.dumps) == 2


class TestBlackBox:
    def test_tail_capacity_bounds_events(self):
        bus, recorder = build(capacity=4)
        for tick in range(10):
            bus.emit(POLL_SERVED, float(tick), node="agent")
        box = recorder.dump("on-demand")
        assert len(box["events"]) == 4
        assert box["events"][0]["t"] == 6.0

    def test_box_correlates_metrics_and_spans(self):
        registry = MetricsRegistry()
        registry.counter("polls").inc(3)
        tracer = Tracer()
        in_box = tracer.start_span("poll", t=1.0, node="agent")
        unrelated = tracer.start_span("other", t=2.0, node="agent")
        bus = EventBus()
        recorder = FlightRecorder(bus, registry=registry, tracer=tracer)
        bus.emit(POLL_SERVED, 1.0, node="agent", trace=in_box)
        box = recorder.dump("on-demand", t=1.5)
        assert box["trace_ids"] == [in_box.trace_id]
        assert {row["name"] for row in registry.snapshot()} == {
            row["name"] for row in box["metrics"]
        }
        span_ids = {row["span_id"] for row in box["spans"]}
        assert in_box.span_id in span_ids
        assert unrelated.span_id not in span_ids

    def test_box_without_traces_has_no_span_section(self):
        bus, recorder = build()
        bus.emit(POLL_SERVED, 1.0, node="agent")
        box = recorder.dump("on-demand")
        assert box["trace_ids"] == []
        assert "spans" not in box
        assert "metrics" not in box  # no registry attached

    def test_write_last_round_trips_json(self, tmp_path):
        bus, recorder = build()
        path = tmp_path / "box.json"
        assert recorder.write_last(str(path)) is False
        bus.emit(RELAY_DEATH, 3.0, node="relay-1", reason="injected")
        assert recorder.write_last(str(path)) is True
        box = json.loads(path.read_text())
        assert box["reason"] == "event:%s" % RELAY_DEATH
        assert box["events"][0]["data"] == {"reason": "injected"}

    def test_last_dump_tracks_newest(self):
        bus, recorder = build(min_dump_interval=0.0)
        assert recorder.last_dump is None
        bus.emit(RELAY_DEATH, 1.0, node="a")
        bus.emit(RELAY_DEATH, 9.0, node="b")
        assert recorder.last_dump["t"] == 9.0


class TestProfileAndAttributionSections:
    def feeds(self):
        from repro.obs import ByteAttribution, Profiler

        tracer = Tracer()
        for tick in range(8):
            span = tracer.start_span("host.serve", t=float(tick), node="host")
            span.finish(tick + 0.5)
        attribution = ByteAttribution()
        for tick in range(8):
            attribution.begin("host", "m%d" % (tick % 2), "full", tick, {"body": 40}).finalize(
                float(tick), 100
            )
        return tracer, Profiler(tracer), attribution

    def test_box_embeds_profile_and_attribution(self):
        tracer, profiler, attribution = self.feeds()
        bus = EventBus()
        recorder = FlightRecorder(
            bus, tracer=tracer, profiler=profiler, attribution=attribution
        )
        bus.emit(POLL_SERVED, 7.0, node="host")
        box = recorder.dump("on-demand", t=7.5)
        assert box["profile"]["spans"] == 8
        assert box["profile"]["collapsed"]
        assert box["attribution"]["responses"] == 8
        assert box["attribution"]["per_member"]["m0"]["body"] == 160
        json.dumps(box)  # the whole box stays JSON-serializable

    def test_profile_window_bounds_the_embedded_profile(self):
        tracer, profiler, attribution = self.feeds()
        bus = EventBus()
        recorder = FlightRecorder(
            bus, profiler=profiler, attribution=attribution, profile_window=2.0
        )
        box = recorder.dump("on-demand", t=7.5)
        # Only spans starting at t >= 5.5 are inside the window.
        assert box["profile"]["spans"] == 2

    def test_rate_limit_holds_with_heavy_sections(self):
        tracer, profiler, attribution = self.feeds()
        bus = EventBus()
        recorder = FlightRecorder(
            bus,
            tracer=tracer,
            profiler=profiler,
            attribution=attribution,
            min_dump_interval=1.0,
        )
        assert recorder.trigger("slo-breach:uplink@m0", t=5.0) is not None
        assert recorder.trigger("slo-breach:uplink@m0", t=5.5) is None
        assert len(recorder.dumps) == 1


class TestDumpByteCap:
    def noisy_world(self, max_dump_bytes, capacity=256):
        from repro.obs import ByteAttribution, Profiler

        tracer = Tracer()
        bus = EventBus()
        attribution = ByteAttribution()
        recorder = FlightRecorder(
            bus,
            registry=MetricsRegistry(),
            tracer=tracer,
            profiler=Profiler(tracer),
            attribution=attribution,
            capacity=capacity,
            max_dump_bytes=max_dump_bytes,
        )
        for tick in range(120):
            span = tracer.start_span(
                "host.serve", t=float(tick), node="host", detail="x" * 40
            )
            span.finish(tick + 0.25)
            bus.emit(POLL_SERVED, float(tick), node="host", trace=span)
            attribution.begin("host", "m%d" % (tick % 6), "full", tick, {"body": 64}).finalize(
                float(tick), 256
            )
        return recorder

    def test_uncapped_box_is_large_and_untruncated(self):
        recorder = self.noisy_world(max_dump_bytes=0)
        box = recorder.dump("on-demand", t=120.0)
        assert "truncated" not in box
        assert len(json.dumps(box).encode("utf-8")) > 16384

    def test_cap_holds_and_box_stays_valid_json(self):
        limit = 16384
        recorder = self.noisy_world(max_dump_bytes=limit)
        box = recorder.dump("on-demand", t=120.0)
        encoded = json.dumps(box, sort_keys=True).encode("utf-8")
        assert len(encoded) <= limit
        decoded = json.loads(encoded)
        assert decoded["truncated"] is True
        assert decoded["reason"] == "on-demand"

    def test_trimming_keeps_the_newest_evidence(self):
        recorder = self.noisy_world(max_dump_bytes=24576)
        box = recorder.dump("on-demand", t=120.0)
        assert box["truncated"] is True
        spans = box["spans"]
        assert spans, "halving keeps the newest half, never drops to empty first"
        assert spans[-1]["start"] == 119.0
        assert spans[0]["start"] > 0.0
        # The event tail was never the over-budget part; it survives whole.
        assert len(box["events"]) == 120

    def test_severe_cap_drops_sections_in_order(self):
        recorder = self.noisy_world(max_dump_bytes=900)
        box = recorder.dump("on-demand", t=120.0)
        encoded = json.dumps(box, sort_keys=True).encode("utf-8")
        assert len(encoded) <= 900
        assert box["truncated"] is True
        # The bulky sections went first; the incident header survives.
        assert "spans" not in box and "profile" not in box
        assert box["reason"] == "on-demand"
        assert "trace_ids" in box

    def test_write_last_round_trips_a_capped_box(self, tmp_path):
        recorder = self.noisy_world(max_dump_bytes=8192)
        recorder.dump("on-demand", t=120.0)
        path = tmp_path / "capped.json"
        assert recorder.write_last(str(path)) is True
        box = json.loads(path.read_text())
        assert box["truncated"] is True
