"""The flight recorder: triggers, rate limits, and black-box contents."""

import json

from repro.obs import (
    HMAC_REJECT,
    POLL_SERVED,
    RELAY_DEATH,
    RESYNC_FORCED,
    EventBus,
    FlightRecorder,
    MetricsRegistry,
    Tracer,
)


def build(events=None, **kwargs):
    bus = events if events is not None else EventBus()
    return bus, FlightRecorder(bus, **kwargs)


class TestTriggers:
    def test_relay_death_triggers_by_default(self):
        bus, recorder = build()
        bus.emit(POLL_SERVED, 1.0, node="agent")
        bus.emit(RELAY_DEATH, 2.0, node="relay-1", reason="injected")
        assert len(recorder.dumps) == 1
        box = recorder.dumps[0]
        assert box["reason"] == "event:%s" % RELAY_DEATH
        assert box["t"] == 2.0
        assert [row["type"] for row in box["events"]] == [POLL_SERVED, RELAY_DEATH]

    def test_custom_trigger_types(self):
        bus, recorder = build(trigger_types=(HMAC_REJECT,))
        bus.emit(RELAY_DEATH, 1.0, node="relay-1")
        assert recorder.dumps == []
        bus.emit(HMAC_REJECT, 2.0, node="agent")
        assert len(recorder.dumps) == 1

    def test_repeated_resync_storm_triggers_once(self):
        bus, recorder = build(resync_threshold=3, resync_window=10.0)
        bus.emit(RESYNC_FORCED, 1.0, node="alice")
        bus.emit(RESYNC_FORCED, 2.0, node="alice")
        assert recorder.dumps == []
        bus.emit(RESYNC_FORCED, 3.0, node="alice")
        assert [box["reason"] for box in recorder.dumps] == ["repeated-resync"]
        # The storm window was consumed; isolated follow-ups stay quiet.
        bus.emit(RESYNC_FORCED, 4.0, node="alice")
        assert len(recorder.dumps) == 1

    def test_resyncs_outside_window_do_not_storm(self):
        bus, recorder = build(resync_threshold=3, resync_window=5.0)
        for t in (0.0, 10.0, 20.0, 30.0):
            bus.emit(RESYNC_FORCED, t, node="alice")
        assert recorder.dumps == []

    def test_explicit_trigger_and_rate_limit(self):
        _bus, recorder = build(min_dump_interval=1.0)
        assert recorder.trigger("slo-breach:staleness@alice", t=5.0) is not None
        # Same reason inside the interval: suppressed.
        assert recorder.trigger("slo-breach:staleness@alice", t=5.5) is None
        # A different reason has its own limiter.
        assert recorder.trigger("slo-breach:staleness@carol", t=5.5) is not None
        # Same reason after the interval passes: allowed again.
        assert recorder.trigger("slo-breach:staleness@alice", t=6.5) is not None
        assert len(recorder.dumps) == 3

    def test_max_dumps_caps_retention(self):
        bus, recorder = build(max_dumps=2, min_dump_interval=0.0)
        for tick in range(5):
            bus.emit(RELAY_DEATH, float(tick), node="relay-%d" % tick)
        assert len(recorder.dumps) == 2


class TestBlackBox:
    def test_tail_capacity_bounds_events(self):
        bus, recorder = build(capacity=4)
        for tick in range(10):
            bus.emit(POLL_SERVED, float(tick), node="agent")
        box = recorder.dump("on-demand")
        assert len(box["events"]) == 4
        assert box["events"][0]["t"] == 6.0

    def test_box_correlates_metrics_and_spans(self):
        registry = MetricsRegistry()
        registry.counter("polls").inc(3)
        tracer = Tracer()
        in_box = tracer.start_span("poll", t=1.0, node="agent")
        unrelated = tracer.start_span("other", t=2.0, node="agent")
        bus = EventBus()
        recorder = FlightRecorder(bus, registry=registry, tracer=tracer)
        bus.emit(POLL_SERVED, 1.0, node="agent", trace=in_box)
        box = recorder.dump("on-demand", t=1.5)
        assert box["trace_ids"] == [in_box.trace_id]
        assert {row["name"] for row in registry.snapshot()} == {
            row["name"] for row in box["metrics"]
        }
        span_ids = {row["span_id"] for row in box["spans"]}
        assert in_box.span_id in span_ids
        assert unrelated.span_id not in span_ids

    def test_box_without_traces_has_no_span_section(self):
        bus, recorder = build()
        bus.emit(POLL_SERVED, 1.0, node="agent")
        box = recorder.dump("on-demand")
        assert box["trace_ids"] == []
        assert "spans" not in box
        assert "metrics" not in box  # no registry attached

    def test_write_last_round_trips_json(self, tmp_path):
        bus, recorder = build()
        path = tmp_path / "box.json"
        assert recorder.write_last(str(path)) is False
        bus.emit(RELAY_DEATH, 3.0, node="relay-1", reason="injected")
        assert recorder.write_last(str(path)) is True
        box = json.loads(path.read_text())
        assert box["reason"] == "event:%s" % RELAY_DEATH
        assert box["events"][0]["data"] == {"reason": "injected"}

    def test_last_dump_tracks_newest(self):
        bus, recorder = build(min_dump_interval=0.0)
        assert recorder.last_dump is None
        bus.emit(RELAY_DEATH, 1.0, node="a")
        bus.emit(RELAY_DEATH, 9.0, node="b")
        assert recorder.last_dump["t"] == 9.0
