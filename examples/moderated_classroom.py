"""Moderated distance learning: one instructor, three students (§3.3).

RCB sessions are hosted and moderated.  Here the instructor runs two
policies in sequence:

* ``ObserveOnlyPolicy`` — lecture mode: students watch; their clicks are
  dropped by the agent.
* ``ConfirmPolicy`` — exercise mode: a student's form answer is held
  until the instructor inspects and explicitly confirms it (paper §3.3's
  inspect-and-confirm flow).

Run with:  python examples/moderated_classroom.py
"""

from repro import (
    Browser,
    CoBrowsingSession,
    ConfirmPolicy,
    Host,
    LAN_PROFILE,
    Network,
    ObserveOnlyPolicy,
    Simulator,
)
from repro.webserver import OriginServer, StaticSite


def main():
    sim = Simulator()
    network = Network(sim)

    site = StaticSite("course.example.edu")
    site.add_page(
        "/lesson1",
        "<html><head><title>Lesson 1</title></head>"
        "<body><h1>Discrete-event simulation</h1>"
        '<a id="next" href="/lesson2">next lesson</a></body></html>',
    )
    site.add_page(
        "/lesson2",
        "<html><head><title>Lesson 2</title></head>"
        "<body><h1>Exercise</h1>"
        "<form id='quiz' action='/answer' method='GET'>"
        "<input type='text' name='answer' value=''></form></body></html>",
    )

    def handler(request, client):
        from repro.http import html_response

        if request.path == "/answer":
            answer = request.query_params().get("answer", "")
            return html_response(
                "<html><head><title>Graded</title></head>"
                "<body><p id='grade'>Answer received: %s</p></body></html>" % answer
            )
        return site.handle(request, client)

    OriginServer(network, "course.example.edu", handler)

    instructor_pc = Host(network, "instructor-pc", LAN_PROFILE, segment="campus")
    instructor = Browser(instructor_pc, name="instructor")
    students = []
    for index in range(3):
        pc = Host(network, "student-pc-%d" % index, LAN_PROFILE, segment="campus")
        students.append(Browser(pc, name="student-%d" % index))

    # Lecture mode: observe-only.
    session = CoBrowsingSession(instructor, policy=ObserveOnlyPolicy())

    def scenario():
        snippets = []
        for index, student in enumerate(students):
            snippet = yield from session.join(student, participant_id="student-%d" % index)
            snippets.append(snippet)
        yield sim.timeout(0.5)  # let every student's first poll land
        print("Roster on the agent: %s" % session.agent.roster())

        yield from session.host_navigate("http://course.example.edu/lesson1")
        yield from session.wait_until_synced()
        print("All students see %r" % students[0].page.document.title)

        # A student tries to click ahead — the policy drops it.
        eager = students[0]
        link = eager.page.document.get_element_by_id("next")
        yield from eager.click_link(link)
        yield from snippets[0].flush()
        yield sim.timeout(2)
        print(
            "Student 0 clicked 'next' during the lecture: instructor is "
            "still on %r (actions dropped: %d)"
            % (instructor.page.document.title, session.agent.stats["actions_dropped"])
        )

        # Exercise mode: switch to inspect-and-confirm.
        session.agent.policy = ConfirmPolicy()
        yield from session.host_navigate("http://course.example.edu/lesson2")
        yield from session.wait_until_synced()

        answerer = students[1]
        quiz = answerer.page.document.get_element_by_id("quiz")
        field = quiz.get_elements_by_tag_name("input")[0]
        answerer.fill_field(field, "events fire in timestamp order")
        yield from answerer.submit_form(quiz)
        yield from snippets[1].flush()
        print(
            "Student 1 submitted an answer; held for review: %d pending"
            % len(session.agent.pending_actions)
        )

        applied = yield from session.agent.confirm_pending()
        yield from session.wait_until_synced()
        print(
            "Instructor confirmed %d action(s); the course site graded: %r"
            % (applied, instructor.page.document.get_element_by_id("grade").text_content)
        )
        for snippet in snippets:
            session.leave(snippet)

    sim.run_until_complete(sim.process(scenario()))


if __name__ == "__main__":
    main()
