"""A WAN session across two homes, behind NAT, with HMAC authentication.

Demonstrates the deployment story of §3.2.1 and §3.4: the host sits on a
private address behind a NAT gateway with a forwarded port; the remote
participant connects through the gateway over slow home broadband; every
request Ajax-Snippet sends is HMAC-signed with the one-time session
secret the host shared out of band.  An attacker without the secret gets
nothing.

Run with:  python examples/secure_wan_session.py
"""

import random

from repro import (
    Browser,
    CoBrowsingSession,
    Host,
    LAN_PROFILE,
    NatGateway,
    Network,
    Simulator,
    WAN_HOME_PROFILE,
    generate_session_secret,
)
from repro.core import AjaxSnippet
from repro.webserver import OriginServer, StaticSite


def main():
    sim = Simulator()
    network = Network(sim, realistic=True)

    site = StaticSite("docs.example.com")
    site.add_page(
        "/",
        "<html><head><title>Private Deck</title></head>"
        "<body><h1>Quarterly numbers</h1></body></html>",
    )
    OriginServer(network, "docs.example.com", site.handle)

    # Bob's home: a private PC behind a NAT gateway with port forwarding.
    gateway = NatGateway(network, "bob-home-gw", WAN_HOME_PROFILE, segment="bob-home")
    bob_pc = Host(network, "bob-private-pc", LAN_PROFILE, segment="bob-home", public=False)
    gateway.forward(3000, "bob-private-pc", 3000)

    # Alice's home, across the internet.
    alice_pc = Host(network, "alice-pc", WAN_HOME_PROFILE, segment="alice-home")

    bob = Browser(bob_pc, name="bob")
    alice = Browser(alice_pc, name="alice")

    secret = generate_session_secret(rng=random.Random(42))
    session = CoBrowsingSession(bob, secret=secret)
    print("Bob's agent listens on the private PC; gateway forwards port 3000.")
    print("Session secret (shared with Alice by phone): %s" % secret)

    def scenario():
        # Alice joins through the GATEWAY's address with the right secret.
        snippet = AjaxSnippet(
            alice, "http://bob-home-gw:3000/", participant_id="alice", secret=secret
        )
        yield from snippet.connect()
        session.participants[snippet.participant_id] = snippet

        yield from session.host_navigate("http://docs.example.com/")
        waited = yield from session.wait_until_synced()
        print(
            "Alice synced %r over the WAN in %.2f simulated seconds."
            % (alice.page.document.title, waited)
        )

        # An eavesdropper who knows the URL but not the secret fails.
        eve_pc = Host(network, "eve-pc", WAN_HOME_PROFILE, segment="eve-home")
        eve = Browser(eve_pc, name="eve")
        eve_snippet = AjaxSnippet(
            eve, "http://bob-home-gw:3000/", participant_id="eve", secret="wrong-guess-000"
        )
        yield from eve_snippet.connect()
        yield sim.timeout(5)
        print(
            "Eve polled with a wrong secret: %d content updates, "
            "%d auth failures recorded by the agent."
            % (eve_snippet.stats.content_updates, session.agent.stats["auth_failures"])
        )
        eve_snippet.disconnect()
        session.leave(snippet)

    sim.run_until_complete(sim.process(scenario()))


if __name__ == "__main__":
    main()
