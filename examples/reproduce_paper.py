"""Regenerate every table and figure of the paper's evaluation (§5).

Runs the full experiment matrix on the simulated testbeds and prints the
same rows/series the paper reports: Figures 6-8, Table 1, Table 2's task
session, and Table 4's questionnaire summary.  Takes about a minute.

Run with:  python examples/reproduce_paper.py
"""

import time

from repro.metrics import (
    render_figure_m1_m2,
    render_figure_m3_m4,
    render_shape_checks,
    render_table1,
    run_experiment,
)
from repro.workloads import (
    LIKERT_LEVELS,
    ScenarioRunner,
    analyze_questionnaire,
    build_lan,
    generate_questionnaire_responses,
)

REPETITIONS = 3  # the paper uses 5; 3 keeps this demo quick


def rule(title):
    print("\n" + "=" * 74)
    print(title)
    print("=" * 74)


def main():
    started = time.perf_counter()

    rule("Figures 6 & 7 — HTML document load time (M1 vs M2)")
    lan_cache = run_experiment("lan", cache_mode=True, repetitions=REPETITIONS)
    print(render_figure_m1_m2(lan_cache.rows, "LAN"))
    print()
    wan_cache = run_experiment("wan", cache_mode=True, repetitions=REPETITIONS)
    print(render_figure_m1_m2(wan_cache.rows, "WAN"))

    rule("Figure 8 — supplementary-object download time (M3 vs M4, LAN)")
    lan_non_cache = run_experiment("lan", cache_mode=False, repetitions=REPETITIONS)
    print(render_figure_m3_m4(lan_non_cache.rows, lan_cache.rows, "LAN"))

    rule("Table 1 — homepage size and processing time (M5/M6)")
    print(render_table1(lan_non_cache.rows, lan_cache.rows))

    rule("Table 2 — the 20-task usability session")
    testbed = build_lan(deploy_sites=False, with_map=True, with_shop=True)
    runner = ScenarioRunner(testbed)
    results = testbed.run(
        runner.run_session(testbed.host_browser, testbed.participant_browser)
    )
    for task in results:
        print(
            "%-7s %-4s %s"
            % (task.task_id, "ok" if task.completed else "FAIL", task.description)
        )
    completed = sum(t.completed for t in results)
    print("completed: %d / %d" % (completed, len(results)))

    rule("Table 4 — questionnaire summary (calibrated response model)")
    summaries = analyze_questionnaire(generate_questionnaire_responses())
    print(("%-4s" + "%22s" * 5 + "%8s %8s") % (("Q",) + LIKERT_LEVELS + ("Median", "Mode")))
    for summary in summaries:
        print(
            ("%-4s" + "%21.1f%%" * 5 + "%8s %8s")
            % ((summary.question,) + summary.percentages + (summary.median, summary.mode))
        )

    rule("Shape checks against the paper's claims")
    wan_winners = sum(1 for r in wan_cache.rows if r.m2 < r.m1)
    lan_by_site = {r.site: r for r in lan_cache.rows}
    checks = {
        "LAN: M2 < 0.4 s on all 20 sites": all(r.m2 < 0.4 for r in lan_cache.rows),
        "LAN: M2 < M1 on all 20 sites": all(r.m2 < r.m1 for r in lan_cache.rows),
        "WAN: M2 < M1 on most sites (paper: 17/20; here: %d/20)" % wan_winners: wan_winners >= 15,
        "LAN: M4 < M3 on all 20 sites": all(
            lan_by_site[r.site].m4 < r.m3 for r in lan_non_cache.rows
        ),
        "M5 grows with page size": lan_non_cache.rows[12].m5  # amazon.com
        > lan_non_cache.rows[1].m5,  # google.com
        "M5 cache > M5 non-cache (aggregate)": sum(r.m5 for r in lan_cache.rows)
        > sum(r.m5 for r in lan_non_cache.rows),
        "Table 2: 100%% task completion": completed == len(results),
        "Table 4: median and mode are Agree for all questions": all(
            s.median == "Agree" and s.mode == "Agree" for s in summaries
        ),
    }
    print(render_shape_checks(checks))
    print("\nTotal wall time: %.1f s" % (time.perf_counter() - started))


if __name__ == "__main__":
    main()
