"""Scenario 1 (paper §5.2.1): coordinating a meeting spot via the maps app.

Bob uses the Ajax map service to show Alice exactly where to meet in
Manhattan.  The map page updates itself tile-by-tile over Ajax — the URL
never changes, so plain URL sharing could not co-browse it; RCB
synchronizes every pan, zoom, and the street view.

Run with:  python examples/google_maps_meeting.py
"""

from repro import Browser, CoBrowsingSession, Host, LAN_PROFILE, Network, Simulator
from repro.webserver import MAP_HOST, MapPageDriver, MapService


def main():
    sim = Simulator()
    network = Network(sim)
    MapService(network)

    bob_pc = Host(network, "bob-pc", LAN_PROFILE, segment="home")
    alice_pc = Host(network, "alice-pc", LAN_PROFILE, segment="home")
    bob = Browser(bob_pc, name="bob")
    alice = Browser(alice_pc, name="alice")
    session = CoBrowsingSession(bob)

    def alice_viewport():
        canvas = alice.page.document.get_element_by_id("map-canvas")
        return (
            canvas.get_attribute("data-zoom"),
            canvas.get_attribute("data-x"),
            canvas.get_attribute("data-y"),
        )

    def scenario():
        snippet = yield from session.join(alice, participant_id="alice")
        yield from session.host_navigate("http://%s/" % MAP_HOST)
        yield from session.wait_until_synced()
        print("Both browsers show the map page.")

        driver = MapPageDriver(bob)

        # Bob searches the meeting address.
        yield from driver.search("653 5th Ave, New York")
        yield from session.wait_until_synced()
        print("Bob searched '653 5th Ave, New York'.")
        print("  Alice's viewport is now (zoom, x, y) = %s" % (alice_viewport(),))

        # Bob pans and zooms; every change mirrors to Alice.
        yield from driver.zoom(1)
        yield from session.wait_until_synced()
        print("Bob zoomed in -> Alice sees %s" % (alice_viewport(),))
        yield from driver.pan(1, 0)
        yield from session.wait_until_synced()
        print("Bob dragged east -> Alice sees %s" % (alice_viewport(),))
        yield from driver.zoom(-1)
        yield from session.wait_until_synced()

        # Street view: the Flash panorama appears on both browsers, but
        # actions INSIDE the Flash are not synchronized (paper's noted
        # limitation) — Bob and Alice each look around on their own.
        yield from driver.open_street_view()
        yield from session.wait_until_synced()
        flash = alice.page.document.get_element_by_id("street-view")
        print(
            "Street view embedded on Alice's browser: %s (type %s)"
            % (flash is not None, flash.get_attribute("type"))
        )
        print("They agree to meet outside the Cartier show-windows.")
        session.leave(snippet)

    sim.run_until_complete(sim.process(scenario()))
    tiles = session.agent.stats["object_requests"]
    print("The host's cache served %d tile/object requests to Alice." % tiles)


if __name__ == "__main__":
    main()
