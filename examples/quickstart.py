"""Quickstart: host a co-browsing session and watch a participant sync.

The minimal RCB loop (paper Fig. 1):

1. Bob installs RCB-Agent in his browser and starts a session.
2. Alice types the agent's URL into her ordinary browser — nothing to
   install — and the polling channel comes up.
3. Whatever Bob browses appears on Alice's browser, while her address
   bar never leaves the agent's URL.

Run with:  python examples/quickstart.py
"""

from repro import Browser, CoBrowsingSession, Host, LAN_PROFILE, Network, Simulator
from repro.webserver import OriginServer, StaticSite


def main():
    # -- build a small simulated world ------------------------------------
    sim = Simulator()
    network = Network(sim)

    site = StaticSite("news.example.com")
    site.add_page(
        "/",
        "<html><head><title>Example News</title></head>"
        "<body><h1>Breaking: co-browsing works</h1>"
        '<img src="/photo.png"></body></html>',
    )
    site.add("/photo.png", "image/png", b"\x89PNG" + b"\x00" * 8000)
    OriginServer(network, "news.example.com", site.handle)

    bob_pc = Host(network, "bob-pc", LAN_PROFILE, segment="office")
    alice_pc = Host(network, "alice-pc", LAN_PROFILE, segment="office")
    bob = Browser(bob_pc, name="bob")
    alice = Browser(alice_pc, name="alice")

    # -- step 1: Bob hosts -------------------------------------------------
    session = CoBrowsingSession(bob, port=3000, poll_interval=1.0)
    print("Bob hosts a session at %s" % session.agent.url)

    def scenario():
        # -- step 2: Alice joins with her regular browser ------------------
        snippet = yield from session.join(alice, participant_id="alice")
        print("Alice joined; her address bar shows %s" % alice.address_bar)

        # -- steps 3-9: Bob browses, Alice follows -------------------------
        yield from session.host_navigate("http://news.example.com/")
        waited = yield from session.wait_until_synced()
        print("Bob loaded %r" % bob.page.document.title)
        print(
            "Alice sees   %r after %.3f simulated seconds"
            % (alice.page.document.title, waited)
        )
        print(
            "Alice's address bar is still %s (content was pushed into the page)"
            % alice.address_bar
        )
        print(
            "Her browser fetched %d supplementary object(s), served %s"
            % (
                len(alice.page.objects),
                "by the host's cache" if session.agent.cache_mode else "by the origin",
            )
        )

        # A dynamic change on the host propagates too.
        bob.mutate_document(
            lambda doc: setattr(
                doc.get_elements_by_tag_name("h1")[0], "inner_html", "Updated headline!"
            )
        )
        yield from session.wait_until_synced()
        print(
            "After Bob's DHTML update Alice reads: %r"
            % alice.page.document.get_elements_by_tag_name("h1")[0].text_content
        )
        session.leave(snippet)

    sim.run_until_complete(sim.process(scenario()))
    print("Agent statistics: %s" % session.agent.stats)


if __name__ == "__main__":
    main()
