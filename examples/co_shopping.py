"""Scenario 2 (paper §5.2.2): online co-shopping at the Amazon stand-in.

Bob hosts; Alice joins.  Both can search and click — Alice's actions are
sent to RCB-Agent on Bob's browser, which performs them, so the shop
only ever sees Bob's session cookie.  Alice co-fills the shipping
address form from her browser, and Bob places the order.

Run with:  python examples/co_shopping.py
"""

from repro import Browser, CoBrowsingSession, Host, LAN_PROFILE, Network, Simulator
from repro.browser import Browser as BrowserType
from repro.webserver import SHOP_HOST, ShopService

ALICE_ADDRESS = {
    "full_name": "Alice Example",
    "street": "653 5th Ave",
    "city": "New York",
    "state": "NY",
    "zip_code": "10022",
}


def main():
    sim = Simulator()
    network = Network(sim)
    shop = ShopService(network)

    bob_pc = Host(network, "bob-pc", LAN_PROFILE, segment="home")
    alice_pc = Host(network, "alice-pc", LAN_PROFILE, segment="home")
    bob = Browser(bob_pc, name="bob")
    alice = Browser(alice_pc, name="alice")
    session = CoBrowsingSession(bob)

    def scenario():
        snippet = yield from session.join(alice, participant_id="alice")

        # Bob opens the shop and searches.
        yield from session.host_navigate("http://%s/" % SHOP_HOST)
        yield from session.wait_until_synced()
        form = bob.page.document.get_element_by_id("searchform")
        yield from bob.submit_form(form, {"q": "MacBook Air"})
        yield from session.wait_until_synced()
        results = [
            el.text_content
            for el in alice.page.document.descendant_elements()
            if el.tag == "a" and (el.get_attribute("id") or "").startswith("result-")
        ]
        print("Alice sees the search results: %s" % results)

        # Alice picks a laptop FROM HER BROWSER: the click is intercepted
        # by Ajax-Snippet, piggybacked to the host, performed there.
        choice = next(
            el
            for el in alice.page.document.descendant_elements()
            if el.get_attribute("id") == "result-mba-13-64"
        )
        yield from alice.click_link(choice)
        yield from snippet.flush()
        yield from session.wait_until_synced()
        print(
            "Alice clicked; Bob's browser navigated to: %r"
            % bob.page.document.get_element_by_id("item-title").text_content
        )

        # Bob adds it to the cart (his session cookie, not Alice's).
        add_form = bob.page.document.get_element_by_id("addform")
        yield from bob.submit_form(add_form)
        yield from session.wait_until_synced()
        print(
            "Cart on both browsers; shop knows %d session(s) — only Bob's."
            % shop.session_count()
        )

        # Checkout: Alice co-fills the shipping form from her side.
        yield from session.host_navigate("http://%s/checkout" % SHOP_HOST)
        yield from session.wait_until_synced()
        alice_form = alice.page.document.get_element_by_id("addressform")
        for name, value in ALICE_ADDRESS.items():
            field = BrowserType._find_form_field(alice_form, name)
            alice.fill_field(field, value)
            alice.dispatch_event(field, "change")
        yield from snippet.flush()
        yield from session.wait_until_synced()
        merged = BrowserType.collect_form_fields(
            bob.page.document.get_element_by_id("addressform")
        )
        print("Address co-filled onto Bob's form: %s" % merged)

        # Bob finishes the checkout.
        yield from bob.submit_form(bob.page.document.get_element_by_id("addressform"))
        yield from bob.submit_form(bob.page.document.get_element_by_id("confirmform"))
        yield from session.wait_until_synced()
        order = bob.page.document.get_element_by_id("order-id").text_content
        print("Order placed: %s" % order)
        print(
            "Alice sees the confirmation too: %s"
            % (alice.page.document.get_element_by_id("order-complete") is not None)
        )
        session.leave(snippet)

    sim.run_until_complete(sim.process(scenario()))


if __name__ == "__main__":
    main()
